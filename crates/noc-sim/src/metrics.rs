//! Metrics extracted from a finished simulation.

use noc_core::{Network, RecoveryReport, StageBreakdown, StallReport};

use crate::analysis::{distribution, LoadDistribution};
use crate::obs::SampleSeries;
use crate::sim::SimConfig;

/// Wall-clock engine profile of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineProfile {
    /// Wall-clock seconds spent in the warm-up phase.
    pub warmup_secs: f64,
    /// Wall-clock seconds spent in the measurement window.
    pub measure_secs: f64,
    /// Wall-clock seconds spent draining.
    pub drain_secs: f64,
    /// Total wall-clock seconds (sum of the phases).
    pub total_secs: f64,
    /// Cycles actually simulated by this process — less than the final
    /// cycle count when the run was resumed from a checkpoint.
    pub cycles_run: u64,
    /// Simulated cycles per wall-clock second (over the cycles this
    /// process actually ran, so resumed runs report honest rates).
    pub cycles_per_sec: f64,
    /// Engine events (buffer writes + crossbar traversals) per wall-clock
    /// second — the engine's useful-work rate, load-independent-ish.
    pub events_per_sec: f64,
    /// Per-stage time breakdown, when a `noc_core::StageProfiler` was
    /// attached for the run (see `Simulation::profile_stages`).
    pub stages: Option<StageBreakdown>,
}

/// The result of one simulation run, including the network itself so the
/// power models can price the recorded activity.
pub struct SimResult {
    /// Topology display name.
    pub name: String,
    /// Average packet latency over the measurement window, in cycles.
    pub avg_latency: f64,
    /// Approximate median latency.
    pub p50_latency: u64,
    /// Approximate 95th-percentile latency.
    pub p95_latency: u64,
    /// Approximate 99th-percentile latency.
    pub p99_latency: u64,
    /// Maximum observed latency.
    pub max_latency: u64,
    /// Average source-queue delay (creation → injection), cycles.
    pub avg_queue_delay: f64,
    /// Average network transit (injection → ejection), cycles.
    pub avg_network_latency: f64,
    /// Accepted throughput over the window, flits/core/cycle.
    pub throughput: f64,
    /// Packets whose latency was measured.
    pub packets_measured: u64,
    /// Offered load (from the config).
    pub offered: f64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// The simulated network with its cumulative statistics (input to
    /// `noc_power::PowerModel::price`).
    pub net: Network,
    /// The configuration that produced this result.
    pub cfg: SimConfig,
    /// Wall-clock engine profile (always collected; costs three clock
    /// reads per run).
    pub profile: EngineProfile,
    /// Periodic state samples, when `cfg.sample_every > 0`.
    pub series: Option<SampleSeries>,
    /// Fraction of resolved packets that were delivered intact (1.0 when
    /// no fault model is attached or it never fired).
    pub delivered_fraction: f64,
    /// Flits flagged corrupt by the link error process or a dead medium.
    pub flits_corrupted: u64,
    /// Link-level retransmissions performed.
    pub flit_retransmits: u64,
    /// Packets dropped after exhausting their retry budget.
    pub packets_dropped_corrupt: u64,
    /// Packets rejected at full bounded source queues.
    pub offers_rejected: u64,
    /// Offers shed by NIC admission control (counted, non-silent drops).
    pub offers_shed: u64,
    /// Offers deferred by NIC admission control (retried by the injector).
    pub offers_deferred: u64,
    /// Offers admitted while the NIC's throttle latch was engaged.
    pub offers_admitted: u64,
    /// Routing reconfigurations triggered by fault detection.
    pub failovers: u64,
    /// Cycles from the first fault firing to the first routing failover
    /// (the detection latency actually observed), when both happened.
    pub time_to_failover: Option<u64>,
    /// Mean latency of packets created at or after the first fault.
    pub avg_post_fault_latency: f64,
    /// Structured diagnostic captured when the progress watchdog declared
    /// a livelock/deadlock; `None` for a run that completed normally.
    pub stall: Option<Box<StallReport>>,
    /// Watchdog-triggered escape-path drains performed during the run
    /// (see `Simulation::set_recovery`); empty when the watchdog never
    /// fired or recovery was off.
    pub recoveries: Vec<RecoveryReport>,
    /// Recovery was enabled, but the run still ended in a stall: the
    /// escape path drained nothing, or the attempt cap was hit.
    pub recovery_exhausted: bool,
    /// Cycle this run was resumed from (checkpoint restore), if it was.
    pub resumed_from: Option<u64>,
    /// The run was stopped early by an armed [`noc_core::CancelToken`]
    /// (supervisor timeout or explicit cancel); metrics cover only the
    /// cycles executed before the token fired.
    pub cancelled: bool,
}

impl SimResult {
    pub(crate) fn collect(
        name: String,
        net: Network,
        cfg: SimConfig,
        throughput: f64,
        profile: EngineProfile,
        series: Option<SampleSeries>,
    ) -> Self {
        let lat = &net.stats.latency;
        let s = &net.stats;
        let time_to_failover = match (s.first_fault_at, s.first_failover_at) {
            (Some(fault), Some(failover)) => Some(failover.saturating_sub(fault)),
            _ => None,
        };
        SimResult {
            name,
            avg_latency: lat.mean(),
            p50_latency: lat.quantile(0.5),
            p95_latency: lat.quantile(0.95),
            p99_latency: lat.quantile(0.99),
            max_latency: lat.max,
            avg_queue_delay: net.stats.queue_delay.mean(),
            avg_network_latency: net.stats.network_latency.mean(),
            throughput,
            packets_measured: lat.count,
            offered: cfg.rate,
            cycles: net.now,
            delivered_fraction: s.delivered_fraction(),
            flits_corrupted: s.flits_corrupted,
            flit_retransmits: s.flit_retransmits,
            packets_dropped_corrupt: s.packets_dropped_corrupt,
            offers_rejected: s.offers_rejected,
            offers_shed: s.offers_shed,
            offers_deferred: s.offers_deferred,
            offers_admitted: s.offers_admitted,
            failovers: s.failovers,
            time_to_failover,
            avg_post_fault_latency: s.post_fault_latency.mean(),
            stall: None,
            recoveries: Vec::new(),
            recovery_exhausted: false,
            resumed_from: None,
            cancelled: false,
            net,
            cfg,
            profile,
            series,
        }
    }

    /// Fraction of offered load that was accepted (≈1 below saturation).
    pub fn acceptance(&self) -> f64 {
        if self.offered == 0.0 {
            return 1.0;
        }
        self.throughput / self.offered
    }

    /// Distribution of delivered packets across destination cores — a
    /// receiver-side fairness metric (`gini` near 0 under symmetric
    /// traffic; a high `hotspot_factor` flags starved or flooded cores).
    pub fn delivery_fairness(&self) -> LoadDistribution {
        distribution(&self.net.stats.per_core_packets)
    }

    /// Whether the run saturated: the time series says the source backlog
    /// grew without bound, or (without sampling) less than 90% of the
    /// offered load was accepted.
    pub fn saturated(&self) -> bool {
        match &self.series {
            Some(series) => series.saturated() || self.acceptance() < 0.90,
            None => self.acceptance() < 0.90,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use noc_topology::CMesh;

    #[test]
    fn percentiles_ordered() {
        let cfg = SimConfig {
            rate: 0.03,
            warmup: 200,
            measure: 1_000,
            drain: 4_000,
            ..Default::default()
        };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        assert!(r.p50_latency <= r.p95_latency);
        assert!(r.p95_latency <= r.p99_latency);
        assert!(r.p99_latency <= r.max_latency + r.net.stats.latency.bucket_width);
        assert!(r.avg_latency >= 1.0);
    }

    #[test]
    fn latency_decomposes_into_queue_plus_network() {
        let cfg = SimConfig {
            rate: 0.03,
            warmup: 200,
            measure: 1_000,
            drain: 4_000,
            ..Default::default()
        };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        let sum = r.avg_queue_delay + r.avg_network_latency;
        assert!(
            (sum - r.avg_latency).abs() < 1.0,
            "queue {} + network {} should equal total {}",
            r.avg_queue_delay,
            r.avg_network_latency,
            r.avg_latency
        );
        assert!(r.avg_network_latency > r.avg_queue_delay, "low load: transit dominates");
    }

    #[test]
    fn acceptance_near_one_below_saturation() {
        let cfg = SimConfig {
            rate: 0.02,
            warmup: 300,
            measure: 1_500,
            drain: 5_000,
            ..Default::default()
        };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        assert!((0.8..=1.2).contains(&r.acceptance()), "acceptance {}", r.acceptance());
    }
}
