//! Metrics extracted from a finished simulation.

use noc_core::Network;

use crate::sim::SimConfig;

/// The result of one simulation run, including the network itself so the
/// power models can price the recorded activity.
pub struct SimResult {
    /// Topology display name.
    pub name: String,
    /// Average packet latency over the measurement window, in cycles.
    pub avg_latency: f64,
    /// Approximate median latency.
    pub p50_latency: u64,
    /// Approximate 99th-percentile latency.
    pub p99_latency: u64,
    /// Maximum observed latency.
    pub max_latency: u64,
    /// Average source-queue delay (creation → injection), cycles.
    pub avg_queue_delay: f64,
    /// Average network transit (injection → ejection), cycles.
    pub avg_network_latency: f64,
    /// Accepted throughput over the window, flits/core/cycle.
    pub throughput: f64,
    /// Packets whose latency was measured.
    pub packets_measured: u64,
    /// Offered load (from the config).
    pub offered: f64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// The simulated network with its cumulative statistics (input to
    /// `noc_power::PowerModel::price`).
    pub net: Network,
    /// The configuration that produced this result.
    pub cfg: SimConfig,
}

impl SimResult {
    pub(crate) fn collect(name: String, net: Network, cfg: SimConfig, throughput: f64) -> Self {
        let lat = &net.stats.latency;
        SimResult {
            name,
            avg_latency: lat.mean(),
            p50_latency: lat.quantile(0.5),
            p99_latency: lat.quantile(0.99),
            max_latency: lat.max,
            avg_queue_delay: net.stats.queue_delay.mean(),
            avg_network_latency: net.stats.network_latency.mean(),
            throughput,
            packets_measured: lat.count,
            offered: cfg.rate,
            cycles: net.now,
            net,
            cfg,
        }
    }

    /// Fraction of offered load that was accepted (≈1 below saturation).
    pub fn acceptance(&self) -> f64 {
        if self.offered == 0.0 {
            return 1.0;
        }
        self.throughput / self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use noc_topology::CMesh;

    #[test]
    fn percentiles_ordered() {
        let cfg = SimConfig { rate: 0.03, warmup: 200, measure: 1_000, drain: 4_000, ..Default::default() };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        assert!(r.p50_latency as f64 <= r.p99_latency as f64 + f64::EPSILON);
        assert!(r.p99_latency <= r.max_latency + r.net.stats.latency.bucket_width);
        assert!(r.avg_latency >= 1.0);
    }

    #[test]
    fn latency_decomposes_into_queue_plus_network() {
        let cfg = SimConfig { rate: 0.03, warmup: 200, measure: 1_000, drain: 4_000, ..Default::default() };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        let sum = r.avg_queue_delay + r.avg_network_latency;
        assert!(
            (sum - r.avg_latency).abs() < 1.0,
            "queue {} + network {} should equal total {}",
            r.avg_queue_delay,
            r.avg_network_latency,
            r.avg_latency
        );
        assert!(r.avg_network_latency > r.avg_queue_delay, "low load: transit dominates");
    }

    #[test]
    fn acceptance_near_one_below_saturation() {
        let cfg = SimConfig { rate: 0.02, warmup: 300, measure: 1_500, drain: 5_000, ..Default::default() };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        assert!((0.8..=1.2).contains(&r.acceptance()), "acceptance {}", r.acceptance());
    }
}
