//! The append-only run ledger: a JSONL write-ahead log of sweep progress.
//!
//! One line per event, flushed as written, so the ledger is exactly as
//! current as the last completed `write(2)` even when the process is
//! SIGKILLed. Two record kinds:
//!
//! ```json
//! {"schema":"own-noc-ledger/v1","kind":"run-start","spec_fp":"<16 hex>","points":"12"}
//! {"kind":"point","fp":"<16 hex>","idx":"3","attempt":"0","state":"running"}
//! ```
//!
//! Point states follow the supervisor's lifecycle: `running` is written
//! *before* an attempt starts (so a kill mid-attempt leaves it as the
//! last word — the tell for "interrupted, not finished"), then exactly
//! one of `done` (with a `metrics` object), `failed` (with a `reason`),
//! `timed-out`, or — once the retry budget is spent — `gave-up`.
//!
//! Replay is last-state-wins per fingerprint. A torn tail (the line being
//! written when the process died) is tolerated: replay stops at the first
//! line that does not parse and reports everything before it. Records
//! with an unknown `kind` are skipped, not fatal — a newer build may have
//! appended kinds this one does not know. House encoding as elsewhere:
//! integers are decimal strings, floats use Rust's shortest round-trip
//! form (so `done` metrics reconstruct bit-exactly).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::Path;

use serde_json::Value;

/// Schema tag of every `run-start` record.
pub const LEDGER_SCHEMA: &str = "own-noc-ledger/v1";

/// Ledger file name inside a run directory.
pub const LEDGER_FILE: &str = "ledger.jsonl";

/// The measurement summary a `done` point persists — everything the
/// merged results file needs, small enough to inline in one ledger line.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// Average packet latency over the measurement window, cycles.
    pub avg_latency: f64,
    /// Approximate latency quantiles, cycles.
    pub p50_latency: u64,
    pub p95_latency: u64,
    pub p99_latency: u64,
    /// Accepted throughput, flits/core/cycle.
    pub throughput: f64,
    /// Fraction of resolved packets delivered intact.
    pub delivered_fraction: f64,
    /// Packets whose latency was measured.
    pub packets_measured: u64,
    /// Total simulated cycles.
    pub cycles: u64,
}

/// A point's journaled state (the `pending` state is the absence of any
/// record for its fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub enum PointState {
    /// An attempt started and has not (yet) recorded an outcome. Seen as
    /// the *final* state, it means the supervisor was killed mid-attempt.
    Running,
    /// Finished; metrics recorded.
    Done(PointMetrics),
    /// The attempt failed (panic, stall, setup error).
    Failed { reason: String },
    /// The attempt exceeded the per-point wall-clock budget.
    TimedOut,
    /// The retry budget is spent; the supervisor stopped trying.
    GaveUp { reason: String },
}

impl PointState {
    /// The `state` word written to and read from the ledger.
    pub fn word(&self) -> &'static str {
        match self {
            PointState::Running => "running",
            PointState::Done(_) => "done",
            PointState::Failed { .. } => "failed",
            PointState::TimedOut => "timed-out",
            PointState::GaveUp { .. } => "gave-up",
        }
    }
}

/// Append-side handle. Every record is `write_all`'d and flushed as one
/// line, so concurrent workers (behind the supervisor's mutex) and a
/// SIGKILL at any instant leave at most one torn line at the tail.
pub struct Ledger {
    file: std::fs::File,
}

impl Ledger {
    /// Open (creating if needed) the ledger of `run_dir` for appending.
    pub fn open(run_dir: &Path) -> io::Result<Ledger> {
        std::fs::create_dir_all(run_dir)?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(run_dir.join(LEDGER_FILE))?;
        Ok(Ledger { file })
    }

    /// Journal the start of a supervisor invocation.
    pub fn run_start(&mut self, spec_fp: u64, points: usize) -> io::Result<()> {
        self.line(&format!(
            "{{\"schema\":\"{LEDGER_SCHEMA}\",\"kind\":\"run-start\",\
             \"spec_fp\":\"{spec_fp:016x}\",\"points\":\"{points}\"}}"
        ))
    }

    /// Journal a point transition.
    pub fn point(
        &mut self,
        fp: u64,
        idx: usize,
        attempt: u32,
        state: &PointState,
    ) -> io::Result<()> {
        let mut s = format!(
            "{{\"kind\":\"point\",\"fp\":\"{fp:016x}\",\"idx\":\"{idx}\",\
             \"attempt\":\"{attempt}\",\"state\":\"{}\"",
            state.word()
        );
        match state {
            PointState::Running | PointState::TimedOut => {}
            PointState::Done(m) => {
                write!(s, ",\"metrics\":{}", encode_metrics(m)).unwrap();
            }
            PointState::Failed { reason } | PointState::GaveUp { reason } => {
                write!(s, ",\"reason\":{}", json_string(reason)).unwrap();
            }
        }
        s.push('}');
        self.line(&s)
    }

    /// Journal a marker record with a custom `kind` (e.g. the sweep
    /// service's `svc-start` boot boundary). Replay skips kinds it does
    /// not know, so markers never affect state reconstruction — they
    /// exist for external tooling (the CI kill-resume smoke test counts
    /// point records after the last boot marker to prove zero
    /// recomputation).
    pub fn marker(&mut self, kind: &str) -> io::Result<()> {
        self.line(&format!("{{\"kind\":{}}}", json_string(kind)))
    }

    fn line(&mut self, s: &str) -> io::Result<()> {
        let mut buf = Vec::with_capacity(s.len() + 1);
        buf.extend_from_slice(s.as_bytes());
        buf.push(b'\n');
        // One write call per record: a crash can tear the tail line but
        // never interleave two records.
        self.file.write_all(&buf)?;
        self.file.flush()
    }
}

/// A point's replayed (last-state-wins) view.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedPoint {
    pub idx: usize,
    /// Highest attempt number seen for this point.
    pub attempt: u32,
    pub state: PointState,
}

/// The reconstructed state of a run directory.
#[derive(Debug, Default)]
pub struct Replay {
    /// Per-fingerprint final state.
    pub points: HashMap<u64, ReplayedPoint>,
    /// `run-start` records seen (= supervisor invocations so far).
    pub run_starts: usize,
    /// Spec fingerprint of the most recent `run-start`.
    pub spec_fp: Option<u64>,
    /// Declared point count of the most recent `run-start`.
    pub declared_points: Option<usize>,
    /// A torn or corrupt line stopped replay early (everything before it
    /// was applied).
    pub torn: bool,
}

impl Replay {
    /// Count of points whose final state matches `word`.
    pub fn count(&self, word: &str) -> usize {
        self.points.values().filter(|p| p.state.word() == word).count()
    }
}

/// Replay `run_dir`'s ledger. A missing file is an empty (fresh) replay.
pub fn replay(run_dir: &Path) -> io::Result<Replay> {
    let text = match std::fs::read_to_string(run_dir.join(LEDGER_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    };
    Ok(replay_text(&text))
}

/// Replay ledger text: apply records in order, stop at the first line
/// that fails to parse (the torn tail of a killed run).
pub fn replay_text(text: &str) -> Replay {
    let mut out = Replay::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let Some(()) = apply_line(line, &mut out) else {
            out.torn = true;
            break;
        };
    }
    out
}

/// Apply one ledger line; `None` means unparsable (torn/corrupt).
fn apply_line(line: &str, out: &mut Replay) -> Option<()> {
    let v: Value = line.parse().ok()?;
    let m = v.as_object()?;
    match m.get("kind")?.as_str()? {
        "run-start" => {
            if m.get("schema")?.as_str()? != LEDGER_SCHEMA {
                return None;
            }
            out.spec_fp = Some(u64::from_str_radix(m.get("spec_fp")?.as_str()?, 16).ok()?);
            out.declared_points = Some(m.get("points")?.as_str()?.parse().ok()?);
            out.run_starts += 1;
        }
        "point" => {
            let fp = u64::from_str_radix(m.get("fp")?.as_str()?, 16).ok()?;
            let idx: usize = m.get("idx")?.as_str()?.parse().ok()?;
            let attempt: u32 = m.get("attempt")?.as_str()?.parse().ok()?;
            let state = match m.get("state")?.as_str()? {
                "running" => PointState::Running,
                "done" => PointState::Done(decode_metrics(m.get("metrics")?)?),
                "failed" => PointState::Failed { reason: m.get("reason")?.as_str()?.to_string() },
                "timed-out" => PointState::TimedOut,
                "gave-up" => PointState::GaveUp { reason: m.get("reason")?.as_str()?.to_string() },
                _ => return None,
            };
            let entry = out.points.entry(fp).or_insert(ReplayedPoint {
                idx,
                attempt,
                state: PointState::Running,
            });
            entry.idx = idx;
            entry.attempt = entry.attempt.max(attempt);
            entry.state = state;
        }
        // Forward compatibility: a newer build's record kinds are not an
        // error, they are just not ours to interpret.
        _ => {}
    }
    Some(())
}

/// Encode metrics as an inline JSON object (house string encoding).
pub fn encode_metrics(m: &PointMetrics) -> String {
    format!(
        "{{\"avg_latency\":\"{:?}\",\"p50_latency\":\"{}\",\"p95_latency\":\"{}\",\
         \"p99_latency\":\"{}\",\"throughput\":\"{:?}\",\"delivered_fraction\":\"{:?}\",\
         \"packets_measured\":\"{}\",\"cycles\":\"{}\"}}",
        m.avg_latency,
        m.p50_latency,
        m.p95_latency,
        m.p99_latency,
        m.throughput,
        m.delivered_fraction,
        m.packets_measured,
        m.cycles,
    )
}

fn decode_metrics(v: &Value) -> Option<PointMetrics> {
    let m = v.as_object()?;
    let f = |key: &str| m.get(key)?.as_str()?.parse::<f64>().ok();
    let u = |key: &str| m.get(key)?.as_str()?.parse::<u64>().ok();
    Some(PointMetrics {
        avg_latency: f("avg_latency")?,
        p50_latency: u("p50_latency")?,
        p95_latency: u("p95_latency")?,
        p99_latency: u("p99_latency")?,
        throughput: f("throughput")?,
        delivered_fraction: f("delivered_fraction")?,
        packets_measured: u("packets_measured")?,
        cycles: u("cycles")?,
    })
}

/// Minimal JSON string literal encoder (panic payloads can contain
/// anything).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("noc-ledger-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_metrics() -> PointMetrics {
        PointMetrics {
            avg_latency: 23.517,
            p50_latency: 21,
            p95_latency: 44,
            p99_latency: 61,
            throughput: 0.019_993,
            delivered_fraction: 1.0,
            packets_measured: 12_345,
            cycles: 42_000,
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = test_dir("roundtrip");
        let mut led = Ledger::open(&dir).unwrap();
        led.run_start(0xabcd, 3).unwrap();
        led.point(1, 0, 0, &PointState::Running).unwrap();
        led.point(2, 1, 0, &PointState::Running).unwrap();
        led.point(1, 0, 0, &PointState::Done(sample_metrics())).unwrap();
        led.point(2, 1, 0, &PointState::Failed { reason: "panic: \"boom\"\n".into() }).unwrap();
        led.point(2, 1, 1, &PointState::Running).unwrap();
        led.point(2, 1, 1, &PointState::TimedOut).unwrap();
        led.point(2, 1, 1, &PointState::GaveUp { reason: "timed out".into() }).unwrap();

        let rep = replay(&dir).unwrap();
        assert!(!rep.torn);
        assert_eq!(rep.run_starts, 1);
        assert_eq!(rep.spec_fp, Some(0xabcd));
        assert_eq!(rep.declared_points, Some(3));
        assert_eq!(rep.points.len(), 2);
        let p1 = &rep.points[&1];
        assert_eq!(p1.state, PointState::Done(sample_metrics()), "metrics survive bit-exactly");
        let p2 = &rep.points[&2];
        assert_eq!(p2.attempt, 1);
        assert_eq!(p2.state, PointState::GaveUp { reason: "timed out".into() });
        // The third point never appeared: pending = absent.
        assert_eq!(rep.count("done"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = test_dir("torn");
        let mut led = Ledger::open(&dir).unwrap();
        led.run_start(7, 2).unwrap();
        led.point(1, 0, 0, &PointState::Done(sample_metrics())).unwrap();
        // Simulate a SIGKILL mid-write: append half a record, no newline.
        let path = dir.join(LEDGER_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"point\",\"fp\":\"000000000000");
        std::fs::write(&path, &text).unwrap();

        let rep = replay(&dir).unwrap();
        assert!(rep.torn);
        assert_eq!(rep.count("done"), 1, "records before the tear all apply");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_kinds_are_skipped_not_fatal() {
        let rep = replay_text(
            "{\"schema\":\"own-noc-ledger/v1\",\"kind\":\"run-start\",\"spec_fp\":\"00ff\",\"points\":\"1\"}\n\
             {\"kind\":\"note\",\"text\":\"from a future version\"}\n\
             {\"kind\":\"point\",\"fp\":\"0001\",\"idx\":\"0\",\"attempt\":\"0\",\"state\":\"running\"}\n",
        );
        assert!(!rep.torn);
        assert_eq!(rep.count("running"), 1);
    }

    #[test]
    fn markers_are_invisible_to_replay() {
        let dir = test_dir("marker");
        let mut led = Ledger::open(&dir).unwrap();
        led.run_start(1, 1).unwrap();
        led.marker("svc-start").unwrap();
        led.point(1, 0, 0, &PointState::Running).unwrap();
        let rep = replay(&dir).unwrap();
        assert!(!rep.torn, "markers must parse as JSON");
        assert_eq!(rep.count("running"), 1);
        assert_eq!(rep.run_starts, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_ledger_is_a_fresh_replay() {
        let dir = test_dir("fresh");
        let rep = replay(&dir).unwrap();
        assert_eq!(rep.run_starts, 0);
        assert!(rep.points.is_empty());
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b\\c\nd\x01"), "\"a\\\"b\\\\c\\nd\\u0001\"");
        // Escaped strings must survive a JSON parse.
        let v: Value =
            format!("{{\"r\":{}}}", json_string("panic: \"x\"\n\tat y")).parse().unwrap();
        assert_eq!(
            v.as_object().unwrap().get("r").unwrap().as_str().unwrap(),
            "panic: \"x\"\n\tat y"
        );
    }
}
