//! Sweep specifications and deterministic point fingerprints.
//!
//! A [`SweepSpec`] is the cross-product description of a batch: lists of
//! topologies, patterns, offered loads and seeds, plus the shared window
//! and router parameters. [`SweepSpec::expand`] flattens it into ordered
//! [`PointSpec`]s, one per (topology, pattern, rate, seed) combination.
//!
//! Every point has a *stable fingerprint* — an FNV-1a 64 hash over a fixed
//! field order with normalized casing and bit-exact float encoding — that
//! keys the run ledger. The fingerprint deliberately excludes the point's
//! position (`idx`) so reordering the spec's lists never invalidates
//! completed work, and it is pinned by a regression test: changing the
//! hash silently would orphan every existing ledger.
//!
//! Like the checkpoint codec, the JSON here is hand-rolled over
//! `serde_json::Value` (integers as decimal strings, floats via Rust's
//! shortest round-trip formatting) so files survive f64-backed parsers.

use std::fmt::Write as _;

use serde_json::Value;

use crate::spec::SimSpec;

/// A batch sweep: the cross product of the four list fields, sharing the
/// scalar parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Topology names (see [`crate::spec`] module docs), outermost axis.
    pub topologies: Vec<String>,
    /// Traffic pattern names.
    pub patterns: Vec<String>,
    /// Offered loads, flits/core/cycle.
    pub rates: Vec<f64>,
    /// Traffic seeds, innermost axis.
    pub seeds: Vec<u64>,
    /// Flits per packet.
    pub packet_len: u16,
    /// Warm-up window, cycles.
    pub warmup: u64,
    /// Measurement window, cycles.
    pub measure: u64,
    /// Drain budget, cycles.
    pub drain: u64,
    /// Virtual channels per port.
    pub vcs: u8,
    /// Buffer depth per VC.
    pub buf_depth: u32,
}

/// One fully-resolved sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Position in the expanded batch (stable output order; not hashed).
    pub idx: usize,
    pub topology: String,
    pub pattern: String,
    pub rate: f64,
    pub seed: u64,
    pub packet_len: u16,
    pub warmup: u64,
    pub measure: u64,
    pub drain: u64,
    pub vcs: u8,
    pub buf_depth: u32,
}

impl SweepSpec {
    /// Parse the JSON sweep format. The four list fields are required and
    /// non-empty; scalars default to the `SimSpec` defaults.
    pub fn from_json(text: &str) -> Result<SweepSpec, String> {
        let v: Value = text.parse().map_err(|e| format!("not valid JSON: {e:?}"))?;
        let m = v.as_object().ok_or("sweep spec: expected an object")?;
        for key in m.keys() {
            const KNOWN: &[&str] = &[
                "topologies",
                "patterns",
                "rates",
                "seeds",
                "packet_len",
                "warmup",
                "measure",
                "drain",
                "vcs",
                "buf_depth",
            ];
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("sweep spec: unknown field {key:?}"));
            }
        }
        let strings = |key: &str| -> Result<Vec<String>, String> {
            let arr = m
                .get(key)
                .ok_or_else(|| format!("sweep spec: missing field {key:?}"))?
                .as_array()
                .ok_or_else(|| format!("sweep spec: field {key:?} must be an array"))?;
            if arr.is_empty() {
                return Err(format!("sweep spec: field {key:?} must not be empty"));
            }
            arr.iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("sweep spec: {key:?} entries must be strings"))
                })
                .collect()
        };
        let f64s = |key: &str| -> Result<Vec<f64>, String> {
            let arr = m
                .get(key)
                .ok_or_else(|| format!("sweep spec: missing field {key:?}"))?
                .as_array()
                .ok_or_else(|| format!("sweep spec: field {key:?} must be an array"))?;
            if arr.is_empty() {
                return Err(format!("sweep spec: field {key:?} must not be empty"));
            }
            arr.iter()
                .map(|v| number(v).ok_or_else(|| format!("sweep spec: bad number in {key:?}")))
                .collect()
        };
        let u64_field = |key: &str, default: u64| -> Result<u64, String> {
            match m.get(key) {
                None => Ok(default),
                Some(v) => integer(v).ok_or_else(|| format!("sweep spec: bad integer {key:?}")),
            }
        };
        let rates = f64s("rates")?;
        if let Some(bad) = rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
            return Err(format!("sweep spec: rate {bad} outside [0, 1]"));
        }
        let seeds_arr = m
            .get("seeds")
            .ok_or("sweep spec: missing field \"seeds\"")?
            .as_array()
            .ok_or("sweep spec: field \"seeds\" must be an array")?;
        if seeds_arr.is_empty() {
            return Err("sweep spec: field \"seeds\" must not be empty".into());
        }
        let seeds = seeds_arr
            .iter()
            .map(|v| integer(v).ok_or_else(|| "sweep spec: seeds must be integers".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(SweepSpec {
            topologies: strings("topologies")?,
            patterns: strings("patterns")?,
            rates,
            seeds,
            packet_len: u16::try_from(u64_field("packet_len", 4)?)
                .map_err(|_| "sweep spec: packet_len too large".to_string())?,
            warmup: u64_field("warmup", 2_000)?,
            measure: u64_field("measure", 10_000)?,
            drain: u64_field("drain", 30_000)?,
            vcs: u8::try_from(u64_field("vcs", 4)?)
                .map_err(|_| "sweep spec: vcs too large".to_string())?,
            buf_depth: u32::try_from(u64_field("buf_depth", 4)?)
                .map_err(|_| "sweep spec: buf_depth too large".to_string())?,
        })
    }

    /// Serialize to the canonical JSON sweep format (fixed field order, so
    /// equal specs produce byte-equal files).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let quoted: Vec<String> = self.topologies.iter().map(|t| format!("{t:?}")).collect();
        write!(s, "\"topologies\":[{}]", quoted.join(",")).unwrap();
        let quoted: Vec<String> = self.patterns.iter().map(|p| format!("{p:?}")).collect();
        write!(s, ",\"patterns\":[{}]", quoted.join(",")).unwrap();
        let rates: Vec<String> = self.rates.iter().map(|r| format!("{r:?}")).collect();
        write!(s, ",\"rates\":[{}]", rates.join(",")).unwrap();
        let seeds: Vec<String> = self.seeds.iter().map(|x| x.to_string()).collect();
        write!(s, ",\"seeds\":[{}]", seeds.join(",")).unwrap();
        write!(
            s,
            ",\"packet_len\":{},\"warmup\":{},\"measure\":{},\"drain\":{},\"vcs\":{},\"buf_depth\":{}}}",
            self.packet_len, self.warmup, self.measure, self.drain, self.vcs, self.buf_depth
        )
        .unwrap();
        s
    }

    /// Flatten into ordered points: topology-major, then pattern, rate,
    /// seed. Every (topology, pattern) pair is validated against the
    /// resolvers in [`crate::spec`], and duplicate fingerprints (repeated
    /// list entries) are rejected — they would alias in the ledger.
    pub fn expand(&self) -> Result<Vec<PointSpec>, String> {
        let mut points = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for topology in &self.topologies {
            for pattern in &self.patterns {
                // Resolve once per pair; errors name the offending entry.
                let probe = SimSpec {
                    topology: topology.clone(),
                    pattern: pattern.clone(),
                    rate: self.rates[0],
                    packet_len: self.packet_len,
                    warmup: self.warmup,
                    measure: self.measure,
                    drain: self.drain,
                    seeds: vec![0],
                    vcs: self.vcs,
                    buf_depth: self.buf_depth,
                    speculative: false,
                };
                probe.topology()?;
                probe.traffic()?;
                for &rate in &self.rates {
                    for &seed in &self.seeds {
                        let p = PointSpec {
                            idx: points.len(),
                            topology: topology.clone(),
                            pattern: pattern.clone(),
                            rate,
                            seed,
                            packet_len: self.packet_len,
                            warmup: self.warmup,
                            measure: self.measure,
                            drain: self.drain,
                            vcs: self.vcs,
                            buf_depth: self.buf_depth,
                        };
                        if !seen.insert(p.fingerprint()) {
                            return Err(format!(
                                "sweep spec: duplicate point {} (repeated list entry?)",
                                p.label()
                            ));
                        }
                        points.push(p);
                    }
                }
            }
        }
        Ok(points)
    }

    /// Size of the cross product *without expanding it* — the admission
    /// check against adversarial or fat-fingered specs must not allocate
    /// one `PointSpec` per point first. u128 so the product of four
    /// usize-sized lists cannot itself overflow.
    pub fn cross_product(&self) -> u128 {
        (self.topologies.len() as u128)
            * (self.patterns.len() as u128)
            * (self.rates.len() as u128)
            * (self.seeds.len() as u128)
    }

    /// Fingerprint of the whole sweep: FNV-1a over every point
    /// fingerprint in expansion order. Two specs that expand to the same
    /// batch are interchangeable for resume purposes.
    pub fn fingerprint(&self) -> Result<u64, String> {
        let mut h = Fnv::new();
        for p in self.expand()? {
            h.u64_le(p.fingerprint());
        }
        Ok(h.finish())
    }
}

impl PointSpec {
    /// Stable identity of this point in the run ledger. Hashes the
    /// simulation-relevant fields in a fixed tagged order — never `idx`,
    /// never map iteration order — with topology/pattern case-normalized
    /// and the rate hashed bit-exactly via `f64::to_bits`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.tag("topology", self.topology.to_ascii_lowercase().as_bytes());
        h.tag("pattern", self.pattern.to_ascii_lowercase().as_bytes());
        h.tag("rate", &self.rate.to_bits().to_le_bytes());
        h.tag("seed", &self.seed.to_le_bytes());
        h.tag("packet_len", &u64::from(self.packet_len).to_le_bytes());
        h.tag("warmup", &self.warmup.to_le_bytes());
        h.tag("measure", &self.measure.to_le_bytes());
        h.tag("drain", &self.drain.to_le_bytes());
        h.tag("vcs", &u64::from(self.vcs).to_le_bytes());
        h.tag("buf_depth", &u64::from(self.buf_depth).to_le_bytes());
        h.finish()
    }

    /// The fingerprint as the 16-hex-digit ledger key.
    pub fn fp_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Human-readable point name for logs and errors.
    pub fn label(&self) -> String {
        format!("{}/{}@{:?}#{}", self.topology, self.pattern, self.rate, self.seed)
    }

    /// The equivalent single-point [`SimSpec`] (resolver reuse).
    pub fn sim_spec(&self) -> SimSpec {
        SimSpec {
            topology: self.topology.clone(),
            pattern: self.pattern.clone(),
            rate: self.rate,
            packet_len: self.packet_len,
            warmup: self.warmup,
            measure: self.measure,
            drain: self.drain,
            seeds: vec![self.seed],
            vcs: self.vcs,
            buf_depth: self.buf_depth,
            speculative: false,
        }
    }
}

/// A JSON number or its decimal-string spelling (the house integer
/// encoding), as f64.
fn number(v: &Value) -> Option<f64> {
    v.as_f64().or_else(|| v.as_str().and_then(|s| s.parse().ok()))
}

/// A JSON integer or its decimal-string spelling, as u64.
fn integer(v: &Value) -> Option<u64> {
    if let Some(u) = v.as_u64() {
        return Some(u);
    }
    v.as_str().and_then(|s| s.parse().ok())
}

/// FNV-1a 64: tiny, dependency-free, and — unlike `DefaultHasher` — its
/// output is stable across Rust releases, which the on-disk ledger needs.
pub struct Fnv(u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// A tagged field: `name`, a NUL separator, the value, another NUL.
    /// The separators keep adjacent fields from aliasing.
    fn tag(&mut self, name: &str, value: &[u8]) {
        self.bytes(name.as_bytes());
        self.bytes(&[0]);
        self.bytes(value);
        self.bytes(&[0]);
    }

    fn u64_le(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec::from_json(
            r#"{"topologies": ["cmesh-64", "wcmesh-64"], "patterns": ["uniform", "bitrev"],
                "rates": [0.01, 0.02], "seeds": [1, 2],
                "warmup": 100, "measure": 400, "drain": 1000}"#,
        )
        .unwrap()
    }

    #[test]
    fn parses_and_expands_cross_product() {
        let spec = small_spec();
        assert_eq!(spec.packet_len, 4, "scalar default");
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 16);
        assert_eq!(spec.cross_product(), 16, "cross_product matches expansion");
        // Topology-major, seed-innermost, sequential idx.
        assert_eq!(points[0].label(), "cmesh-64/uniform@0.01#1");
        assert_eq!(points[1].label(), "cmesh-64/uniform@0.01#2");
        assert_eq!(points[2].label(), "cmesh-64/uniform@0.02#1");
        assert_eq!(points[15].label(), "wcmesh-64/bitrev@0.02#2");
        assert!(points.iter().enumerate().all(|(i, p)| p.idx == i));
    }

    #[test]
    fn rejects_bad_specs() {
        let err = |j: &str| SweepSpec::from_json(j).unwrap_err();
        assert!(err("[]").contains("expected an object"));
        assert!(err(r#"{"patterns": ["un"], "rates": [0.1], "seeds": [1]}"#)
            .contains("missing field \"topologies\""));
        assert!(err(r#"{"topologies": [], "patterns": ["un"], "rates": [0.1], "seeds": [1]}"#)
            .contains("must not be empty"));
        assert!(err(
            r#"{"topologies": ["cmesh-64"], "patterns": ["un"], "rates": [1.5], "seeds": [1]}"#
        )
        .contains("outside [0, 1]"));
        assert!(err(
            r#"{"topologies": ["cmesh-64"], "patterns": ["un"], "rates": [0.1], "seeds": [1],
                "typo_field": 3}"#
        )
        .contains("unknown field"));
        // Unknown topology / pattern and duplicate entries fail at expand.
        let bad = SweepSpec { topologies: vec!["hypercube-9".into()], ..small_spec() };
        assert!(bad.expand().unwrap_err().contains("unknown topology"));
        let dup = SweepSpec { seeds: vec![1, 1], ..small_spec() };
        assert!(dup.expand().unwrap_err().contains("duplicate point"));
    }

    #[test]
    fn json_round_trips_canonically() {
        let spec = small_spec();
        let text = spec.to_json();
        let back = SweepSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text, "canonical form is a fixed point");
    }

    #[test]
    fn fingerprint_ignores_idx_and_case_but_not_parameters() {
        let points = small_spec().expand().unwrap();
        let p = &points[0];
        let mut renumbered = p.clone();
        renumbered.idx = 99;
        assert_eq!(renumbered.fingerprint(), p.fingerprint(), "idx must not be hashed");
        let mut upper = p.clone();
        upper.topology = p.topology.to_ascii_uppercase();
        assert_eq!(upper.fingerprint(), p.fingerprint(), "topology case-normalizes");
        for (i, a) in points.iter().enumerate() {
            for b in points.iter().skip(i + 1) {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{} vs {}", a.label(), b.label());
            }
        }
        let mut deeper = p.clone();
        deeper.buf_depth += 1;
        assert_ne!(deeper.fingerprint(), p.fingerprint());
    }

    /// The on-disk ledger key. If this value changes, every existing
    /// run-dir silently orphans: do not "fix" the expectation without a
    /// ledger-format version bump.
    #[test]
    fn fingerprint_is_pinned() {
        let p = PointSpec {
            idx: 0,
            topology: "own-256".into(),
            pattern: "uniform".into(),
            rate: 0.03,
            seed: 0x0517_2018,
            packet_len: 4,
            warmup: 2_000,
            measure: 10_000,
            drain: 30_000,
            vcs: 4,
            buf_depth: 4,
        };
        assert_eq!(p.fp_hex(), "bfe09fdd77f08a0f", "pinned ledger fingerprint drifted");
    }
}
