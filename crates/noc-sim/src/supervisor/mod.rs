//! Crash-safe sweep supervisor: journaled runs, panic isolation,
//! timeout/retry, kill-resume.
//!
//! The supervisor turns a [`SweepSpec`] batch into completed points under
//! real-world failure: a point that panics, wedges, or fails transiently
//! must not take the batch down, and a supervisor process that is killed
//! (SIGKILL included) must resume from where the ledger says it was.
//!
//! The mechanism stack, bottom to top:
//!
//! * **Ledger** ([`ledger`]): every state transition is appended to a
//!   JSONL write-ahead log *before* the work happens, so the on-disk
//!   state is never more optimistic than reality. See the module docs
//!   for the format and the torn-tail rules.
//! * **Panic isolation**: each attempt runs under
//!   [`std::panic::catch_unwind`]; the payload becomes the journaled
//!   failure reason and the remaining points keep running.
//! * **Timeout**: each attempt gets a [`CancelToken`] armed with the
//!   per-point wall-clock budget; the simulation loop polls it
//!   cooperatively (cheaply — see `noc_core::cancel`) and exits at a
//!   clean cycle boundary, journaled as `timed-out`.
//! * **Retry**: failed/timed-out attempts rerun with the *same seed*
//!   (the sweep's results must not depend on how flaky the host was)
//!   after an exponential backoff with deterministic per-point jitter.
//!   A spent budget journals `gave-up`; `--max-failures` aborts the
//!   batch early once too many points give up.
//! * **Kill-resume**: a rerun of the same run-dir skips `done` points
//!   (verified against the spec fingerprint), resumes half-finished
//!   ones from their latest valid checkpoint, and re-attempts the rest.
//!   The merged `results.json` is byte-identical to an uninterrupted
//!   run's because it is always regenerated from the replayed ledger.

pub mod ledger;
pub mod lock;
pub mod spec;

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use noc_core::{CancelToken, RouterConfig};
use rayon::prelude::*;

pub use ledger::{replay, Ledger, PointMetrics, PointState, Replay, LEDGER_FILE, LEDGER_SCHEMA};
pub use lock::{RunLock, LOCK_FILE};
pub use spec::{PointSpec, SweepSpec};

use crate::checkpoint;
use crate::metrics::SimResult;
use crate::sim::{SimConfig, Simulation};

/// Results file name inside a run directory.
pub const RESULTS_FILE: &str = "results.json";

/// Spec copy stored inside a run directory (guards against resuming a
/// run-dir with a different spec).
pub const SPEC_FILE: &str = "spec.json";

/// Schema tag of the merged results file.
pub const RESULTS_SCHEMA: &str = "own-noc-results/v1";

/// Default admission cap on a sweep's cross-product size. Large enough
/// for any deliberate design-space exploration in this repo, small
/// enough that a fat-fingered spec (`"seeds": [0..10^9]`-style) is
/// refused before expansion allocates anything.
pub const DEFAULT_POINT_CAP: usize = 100_000;

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget per attempt; `None` = unlimited.
    pub point_timeout: Option<Duration>,
    /// Reruns after the first attempt (total attempts = retries + 1).
    pub point_retries: u32,
    /// Abort the batch once this many points have given up; `None` =
    /// keep going to the end no matter what.
    pub max_failures: Option<usize>,
    /// First backoff delay; doubles per retry (capped at 5 s) plus a
    /// deterministic per-point jitter.
    pub backoff_base: Duration,
    /// Per-point checkpoint cadence in cycles (0 = no checkpoints; then
    /// interrupted points restart from cycle 0 on resume).
    pub checkpoint_every: u64,
    /// Refuse specs whose cross product exceeds this many points
    /// (`None` = unlimited). Checked *before* expansion, so an
    /// adversarial or fat-fingered spec cannot balloon memory first.
    pub point_cap: Option<usize>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            point_timeout: None,
            point_retries: 2,
            max_failures: None,
            backoff_base: Duration::from_millis(100),
            checkpoint_every: 0,
            point_cap: Some(DEFAULT_POINT_CAP),
        }
    }
}

/// Why an attempt did not produce metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum PointFailure {
    /// The attempt failed outright (stall, setup error, ...).
    Failed(String),
    /// The attempt's cancel token fired.
    TimedOut,
}

/// Everything a [`PointRunner`] attempt is given by the supervisor.
pub struct PointCtx {
    /// Armed with the point timeout; long-running work must poll it.
    pub cancel: CancelToken,
    /// Where this point's checkpoints live, when checkpointing is on.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in cycles (0 = off).
    pub checkpoint_every: u64,
    /// Attempt number, counting every attempt ever journaled for the
    /// point (so reruns of a run-dir keep incrementing).
    pub attempt: u32,
}

/// The unit of work the supervisor schedules. The production impl is
/// [`SimRunner`]; tests substitute panicking/wedging/flaky runners.
pub trait PointRunner: Sync {
    fn run_point(&self, point: &PointSpec, ctx: &PointCtx) -> Result<PointMetrics, PointFailure>;
}

/// Runs a point as a real simulation, resuming from the latest valid
/// checkpoint in `ctx.checkpoint_dir` when one exists.
pub struct SimRunner;

impl PointRunner for SimRunner {
    fn run_point(&self, point: &PointSpec, ctx: &PointCtx) -> Result<PointMetrics, PointFailure> {
        let sspec = point.sim_spec();
        let topo = sspec.topology().map_err(PointFailure::Failed)?;
        let pattern = sspec.traffic().map_err(PointFailure::Failed)?;
        let cfg = SimConfig {
            rate: point.rate,
            pattern,
            packet_len: point.packet_len,
            warmup: point.warmup,
            measure: point.measure,
            drain: point.drain,
            seed: point.seed,
            router: RouterConfig::new(point.vcs, point.buf_depth),
            ..Default::default()
        };
        let mut sim = match &ctx.checkpoint_dir {
            Some(dir) => match checkpoint::latest_valid_checkpoint(dir) {
                Ok(Some((_, ckpt))) => Simulation::resume_from_checkpoint(topo.as_ref(), cfg, ckpt)
                    .map_err(|e| PointFailure::Failed(format!("checkpoint resume: {e}")))?,
                Ok(None) => Simulation::new(topo.as_ref(), cfg),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    Simulation::new(topo.as_ref(), cfg)
                }
                Err(e) => return Err(PointFailure::Failed(format!("checkpoint scan: {e}"))),
            },
            None => Simulation::new(topo.as_ref(), cfg),
        };
        if let (Some(dir), true) = (&ctx.checkpoint_dir, ctx.checkpoint_every > 0) {
            sim.set_checkpointing(ctx.checkpoint_every, dir.clone());
        }
        sim.set_cancel(ctx.cancel.clone());
        let result = sim.run();
        if result.cancelled {
            return Err(PointFailure::TimedOut);
        }
        if let Some(stall) = &result.stall {
            return Err(PointFailure::Failed(format!("stall: {}", stall.summary())));
        }
        Ok(point_metrics(&result))
    }
}

/// Extract the journaled metrics summary from a finished run.
pub fn point_metrics(r: &SimResult) -> PointMetrics {
    PointMetrics {
        avg_latency: r.avg_latency,
        p50_latency: r.p50_latency,
        p95_latency: r.p95_latency,
        p99_latency: r.p99_latency,
        throughput: r.throughput,
        delivered_fraction: r.delivered_fraction,
        packets_measured: r.packets_measured,
        cycles: r.cycles,
    }
}

/// What a supervisor invocation accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Points in the expanded spec.
    pub total: usize,
    /// Points that finished — this run or (journaled `done`) earlier.
    pub done: usize,
    /// Of `done`, how many were skipped because the ledger already had
    /// their metrics (zero on a fresh run; the kill-resume tests assert
    /// it equals the pre-kill count).
    pub skipped: usize,
    /// Points that exhausted their retry budget this run.
    pub gave_up: usize,
    /// Points never attempted because `--max-failures` aborted the batch.
    pub not_run: usize,
    /// Written only when every point is done.
    pub results_path: Option<PathBuf>,
}

impl SweepOutcome {
    /// `true` when every point of the sweep has metrics.
    pub fn complete(&self) -> bool {
        self.done == self.total
    }

    /// The process exit code this outcome maps to.
    pub fn exit_code(&self) -> i32 {
        if self.complete() {
            crate::exit::OK
        } else {
            crate::exit::SWEEP_INCOMPLETE
        }
    }
}

/// Run (or resume) a sweep in `run_dir`. See the module docs for the
/// failure semantics; this function is safe to invoke repeatedly on the
/// same directory until [`SweepOutcome::complete`].
pub fn run_sweep(
    run_dir: &Path,
    sweep: &SweepSpec,
    runner: &dyn PointRunner,
    cfg: &SupervisorConfig,
) -> io::Result<SweepOutcome> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    check_point_cap(sweep, cfg.point_cap).map_err(invalid)?;
    let points = sweep.expand().map_err(invalid)?;
    let spec_fp = sweep.fingerprint().map_err(invalid)?;

    // One writer per run-dir: interleaved appends from two supervisors
    // would scramble the ledger. Held for the whole invocation.
    let _lock = RunLock::acquire(run_dir)?;

    // Pin the spec to the run-dir: first invocation writes it, later
    // ones must match (a different spec would corrupt the ledger's
    // meaning, since points are keyed by content fingerprint).
    let spec_path = run_dir.join(SPEC_FILE);
    match std::fs::read_to_string(&spec_path) {
        Ok(text) => {
            let prior = SweepSpec::from_json(&text)
                .map_err(|e| invalid(format!("{}: {e}", spec_path.display())))?;
            let prior_fp = prior.fingerprint().map_err(invalid)?;
            if prior_fp != spec_fp {
                return Err(invalid(format!(
                    "run-dir {} belongs to a different sweep (spec fingerprint \
                     {prior_fp:016x}, this spec is {spec_fp:016x}); use a fresh --run-dir",
                    run_dir.display()
                )));
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            checkpoint::atomic_write(&spec_path, sweep.to_json().as_bytes())?;
        }
        Err(e) => return Err(e),
    }

    // Replay the ledger: done points are skipped, everything else is
    // (re)scheduled with its attempt counter continuing where it left
    // off. `running` as a final state means a kill interrupted the
    // attempt — its checkpoints (if any) make the rerun cheap.
    let prior = replay(run_dir)?;
    let mut skipped = 0usize;
    let mut work: Vec<(PointSpec, u32)> = Vec::new();
    for p in &points {
        match prior.points.get(&p.fingerprint()) {
            Some(rp) if matches!(rp.state, PointState::Done(_)) => skipped += 1,
            Some(rp) => work.push((p.clone(), rp.attempt + 1)),
            None => work.push((p.clone(), 0)),
        }
    }

    let mut led = Ledger::open(run_dir)?;
    led.run_start(spec_fp, points.len())?;
    let led = Mutex::new(led);
    let gave_up = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    let sched = PointScheduler {
        runner,
        cfg,
        ckpt_root: run_dir.join("ckpt"),
        led: &led,
        batch_cancel: None,
    };
    work.par_iter().for_each(|(point, first_attempt)| {
        let give_up_now = || abort.load(Ordering::Relaxed);
        if let PointOutcome::GaveUp { .. } = sched.run_point(point, *first_attempt, &give_up_now) {
            let n = gave_up.fetch_add(1, Ordering::Relaxed) + 1;
            if cfg.max_failures.is_some_and(|max| n >= max) && !abort.swap(true, Ordering::Relaxed)
            {
                eprintln!("[sweep] aborting batch: {n} points gave up (--max-failures)");
            }
        }
    });

    // Always rebuild the outcome (and results.json) from the replayed
    // ledger rather than in-memory values: interrupted-then-resumed and
    // uninterrupted runs then emit byte-identical results.
    let after = replay(run_dir)?;
    let done = after.count("done");
    let attempted = points.iter().filter(|p| after.points.contains_key(&p.fingerprint())).count();
    let outcome = SweepOutcome {
        total: points.len(),
        done,
        skipped,
        gave_up: gave_up.load(Ordering::Relaxed),
        not_run: points.len() - attempted,
        results_path: None,
    };
    if outcome.complete() {
        let path = write_results(run_dir, spec_fp, &points, &after)?;
        return Ok(SweepOutcome { results_path: Some(path), ..outcome });
    }
    Ok(outcome)
}

/// Refuse a spec whose cross product exceeds `cap` — *before* expansion,
/// so rejection costs O(1) regardless of how big the spec claims to be.
pub fn check_point_cap(sweep: &SweepSpec, cap: Option<usize>) -> Result<(), String> {
    let Some(cap) = cap else { return Ok(()) };
    let n = sweep.cross_product();
    if n > cap as u128 {
        return Err(format!(
            "sweep spec: cross product is {n} points, over the cap of {cap} \
             (split the sweep, or raise the cap if this is deliberate)"
        ));
    }
    Ok(())
}

/// How one scheduled point ended.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// An attempt produced metrics (journaled `done`).
    Done(PointMetrics),
    /// The retry budget is spent (journaled `gave-up`).
    GaveUp { reason: String },
    /// The batch cancel (or abort predicate) fired before the point
    /// finished. Deliberately NOT journaled as a failure: the ledger's
    /// last state stays `running` (or never-attempted), which is exactly
    /// the resumable shape kill-resume expects.
    Interrupted,
}

/// The attempt loop PR 8's batch supervisor and the `noc-svc` worker pool
/// share: journal `running`, run under `catch_unwind` with a per-attempt
/// [`CancelToken`], journal the outcome, back off and retry until the
/// budget is spent. Construct one per batch (it is `Sync`; threads share
/// it by reference) and call [`PointScheduler::run_point`] per point.
pub struct PointScheduler<'a> {
    pub runner: &'a dyn PointRunner,
    pub cfg: &'a SupervisorConfig,
    /// Per-point checkpoint directories live at `ckpt_root/<fp>/`.
    pub ckpt_root: PathBuf,
    pub led: &'a Mutex<Ledger>,
    /// Batch-wide shutdown signal. Each attempt's token is linked under
    /// it, so a shutdown cancels in-flight simulations at their next
    /// cycle-boundary poll (forcing a final checkpoint) and the attempt
    /// comes back [`PointOutcome::Interrupted`] instead of `timed-out`.
    pub batch_cancel: Option<CancelToken>,
}

impl PointScheduler<'_> {
    /// Run one point to a terminal outcome. `give_up_now` is polled
    /// between attempts (the `--max-failures` abort, or the service's
    /// queue-drain signal); when it fires the point is left pending.
    pub fn run_point(
        &self,
        point: &PointSpec,
        first_attempt: u32,
        give_up_now: &(dyn Fn() -> bool + Sync),
    ) -> PointOutcome {
        let cfg = self.cfg;
        let fp = point.fingerprint();
        let journal = |attempt: u32, state: &PointState| {
            let mut led = self.led.lock().expect("ledger mutex poisoned");
            if let Err(e) = led.point(fp, point.idx, attempt, state) {
                // A dead ledger degrades durability, not correctness: the
                // batch keeps running, a later resume just redoes more work.
                eprintln!("[sweep] ledger append failed for {}: {e}", point.label());
            }
        };
        let shutting_down = || self.batch_cancel.as_ref().is_some_and(CancelToken::is_cancelled);
        let mut attempt = first_attempt;
        let mut last_reason = String::new();
        for try_no in 0..=cfg.point_retries {
            if give_up_now() || shutting_down() {
                return PointOutcome::Interrupted; // left pending; a rerun picks it up
            }
            journal(attempt, &PointState::Running);
            let cancel = match (&self.batch_cancel, cfg.point_timeout) {
                (Some(root), Some(t)) => CancelToken::linked_with_timeout(root, t),
                (Some(root), None) => CancelToken::linked(root),
                (None, Some(t)) => CancelToken::with_timeout(t),
                (None, None) => CancelToken::new(),
            };
            let ctx = PointCtx {
                cancel,
                checkpoint_dir: (cfg.checkpoint_every > 0)
                    .then(|| self.ckpt_root.join(format!("{fp:016x}"))),
                checkpoint_every: cfg.checkpoint_every,
                attempt,
            };
            let verdict = catch_unwind(AssertUnwindSafe(|| self.runner.run_point(point, &ctx)));
            let state = match verdict {
                Ok(Ok(metrics)) => {
                    journal(attempt, &PointState::Done(metrics.clone()));
                    return PointOutcome::Done(metrics);
                }
                // A "timeout" observed while the batch cancel is down is
                // really the shutdown broadcast arriving through the
                // linked token: leave the ledger at `running` so the
                // point resumes from its final checkpoint.
                Ok(Err(PointFailure::TimedOut)) if shutting_down() => {
                    return PointOutcome::Interrupted;
                }
                Ok(Err(PointFailure::Failed(reason))) => PointState::Failed { reason },
                Ok(Err(PointFailure::TimedOut)) => PointState::TimedOut,
                Err(payload) => {
                    PointState::Failed { reason: format!("panic: {}", panic_str(&*payload)) }
                }
            };
            last_reason = match &state {
                PointState::Failed { reason } => reason.clone(),
                PointState::TimedOut => "timed out".into(),
                _ => unreachable!("attempt outcomes are failed or timed-out"),
            };
            journal(attempt, &state);
            eprintln!(
                "[sweep] {} attempt {attempt}: {} ({last_reason})",
                point.label(),
                state.word()
            );
            if try_no < cfg.point_retries {
                if !self.backoff_sleep(backoff_delay(cfg.backoff_base, try_no, fp)) {
                    return PointOutcome::Interrupted;
                }
                attempt += 1;
            }
        }
        journal(attempt, &PointState::GaveUp { reason: last_reason.clone() });
        PointOutcome::GaveUp { reason: last_reason }
    }

    /// Sleep `total` in short slices so a shutdown does not have to wait
    /// out a multi-second backoff. Returns `false` if interrupted.
    fn backoff_sleep(&self, total: Duration) -> bool {
        let Some(root) = &self.batch_cancel else {
            std::thread::sleep(total);
            return true;
        };
        let slice = Duration::from_millis(25);
        let mut left = total;
        while left > Duration::ZERO {
            if root.is_cancelled() {
                return false;
            }
            let step = left.min(slice);
            std::thread::sleep(step);
            left -= step;
        }
        !root.is_cancelled()
    }
}

fn panic_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Exponential backoff (base·2^try, capped at 5 s) plus a deterministic
/// jitter derived from the point fingerprint — reruns are seed-preserving,
/// so the *work* is identical; only the scheduling detunes.
fn backoff_delay(base: Duration, try_no: u32, fp: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << try_no.min(6));
    let capped = exp.min(Duration::from_secs(5));
    let quarter = (capped.as_nanos() as u64 / 4).max(1);
    let jitter = splitmix64(fp ^ u64::from(try_no).wrapping_mul(0x9e37_79b9)) % quarter;
    capped + Duration::from_nanos(jitter)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Render the merged, idx-ordered `own-noc-results/v1` document. Always
/// regenerated from a ledger replay so the bytes do not depend on which
/// invocation finished which point — that replay-determinism is what
/// makes interrupted and uninterrupted runs byte-identical. Errors if
/// any point lacks a `done` record.
pub fn render_results(spec_fp: u64, points: &[PointSpec], rep: &Replay) -> io::Result<String> {
    use std::fmt::Write as _;
    let mut s = format!("{{\"schema\":\"{RESULTS_SCHEMA}\",\"spec_fp\":\"{spec_fp:016x}\",");
    s.push_str("\"points\":[\n");
    for (i, p) in points.iter().enumerate() {
        let fp = p.fingerprint();
        let Some(rp) = rep.points.get(&fp) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("results: ledger has no record for {}", p.label()),
            ));
        };
        let PointState::Done(m) = &rp.state else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("results: {} is {} in the ledger", p.label(), rp.state.word()),
            ));
        };
        write!(
            s,
            "{{\"idx\":\"{}\",\"fp\":\"{fp:016x}\",\"topology\":{},\"pattern\":{},\
             \"rate\":\"{:?}\",\"seed\":\"{}\",\"metrics\":{}}}",
            p.idx,
            ledger::json_string(&p.topology),
            ledger::json_string(&p.pattern),
            p.rate,
            p.seed,
            ledger::encode_metrics(m),
        )
        .unwrap();
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("]}\n");
    Ok(s)
}

/// Write the rendered results file atomically into `run_dir`.
fn write_results(
    run_dir: &Path,
    spec_fp: u64,
    points: &[PointSpec],
    rep: &Replay,
) -> io::Result<PathBuf> {
    let s = render_results(spec_fp, points, rep)?;
    let final_path = run_dir.join(RESULTS_FILE);
    checkpoint::atomic_write(&final_path, s.as_bytes())?;
    Ok(final_path)
}

/// Human-readable status of a run directory (the `sweep-status`
/// subcommand). Reads only the spec and the ledger — safe to call while
/// a supervisor is running or after any kind of crash.
pub fn status(run_dir: &Path) -> io::Result<String> {
    use std::fmt::Write as _;
    let rep = replay(run_dir)?;
    let labels: std::collections::HashMap<u64, String> =
        match std::fs::read_to_string(run_dir.join(SPEC_FILE)) {
            Ok(text) => SweepSpec::from_json(&text)
                .and_then(|s| s.expand())
                .map(|ps| ps.iter().map(|p| (p.fingerprint(), p.label())).collect())
                .unwrap_or_default(),
            Err(_) => Default::default(),
        };
    let total = rep.declared_points.unwrap_or(rep.points.len());
    let mut s = format!(
        "run {}: {} invocation(s), {total} points — {} done, {} gave-up, {} failed, \
         {} timed-out, {} interrupted, {} pending{}\n",
        run_dir.display(),
        rep.run_starts,
        rep.count("done"),
        rep.count("gave-up"),
        rep.count("failed"),
        rep.count("timed-out"),
        rep.count("running"),
        total.saturating_sub(rep.points.len()),
        if rep.torn { " (torn ledger tail tolerated)" } else { "" },
    );
    let mut unfinished: Vec<_> =
        rep.points.iter().filter(|(_, rp)| !matches!(rp.state, PointState::Done(_))).collect();
    unfinished.sort_by_key(|(_, rp)| rp.idx);
    for (fp, rp) in unfinished {
        let label = labels.get(fp).cloned().unwrap_or_else(|| format!("{fp:016x}"));
        let reason = match &rp.state {
            PointState::Failed { reason } | PointState::GaveUp { reason } => format!(" — {reason}"),
            _ => String::new(),
        };
        writeln!(
            s,
            "  [{}] {} attempt {}: {}{}",
            rp.idx,
            label,
            rp.attempt,
            rp.state.word(),
            reason
        )
        .unwrap();
    }
    if run_dir.join(RESULTS_FILE).exists() {
        writeln!(s, "  results: {}", run_dir.join(RESULTS_FILE).display()).unwrap();
    }
    Ok(s)
}
