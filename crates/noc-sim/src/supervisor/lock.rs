//! Run-directory lockfile: at most one supervisor (or sweep service) may
//! write a ledger at a time.
//!
//! Two supervisors interleaving appends into one `ledger.jsonl` would
//! corrupt the journal's meaning (their `run-start` boundaries and point
//! attempts shuffle together), so every writer takes `supervisor.lock`
//! first. The lock is a small text file created with `O_EXCL` (the
//! creation itself is the atomic claim) holding the owner's PID and — on
//! Linux — the PID's start time from `/proc/<pid>/stat`, which
//! distinguishes a live owner from a recycled PID.
//!
//! A SIGKILLed owner leaves the file behind; the next acquirer performs a
//! liveness check and **takes over a stale lock**: the recorded PID is
//! gone (or its start time no longer matches), so the file is deleted and
//! the claim retried. A *live* owner makes acquisition fail with
//! [`std::io::ErrorKind::WouldBlock`], which the CLI and the service map
//! to exit code 8 (`noc_sim::exit::LOCKED`).

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Lock file name inside a run directory.
pub const LOCK_FILE: &str = "supervisor.lock";

/// Bound on stale-lock takeover retries: each loop either creates the
/// file or observes a *different* holder, so more than a handful of laps
/// means we are racing a livelock of crashing owners — give up loudly.
const TAKEOVER_RETRIES: u32 = 16;

/// RAII guard on a run directory. Dropping it releases the lock (only if
/// the file still carries our token — a takeover after our own demise
/// must not be clobbered by a late destructor).
#[derive(Debug)]
pub struct RunLock {
    path: PathBuf,
    token: String,
}

impl RunLock {
    /// Claim `dir` (created if missing) for this process. Returns
    /// [`io::ErrorKind::WouldBlock`] when a *live* process holds it.
    pub fn acquire(dir: &Path) -> io::Result<RunLock> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_FILE);
        let token = lock_token(std::process::id());
        for _ in 0..TAKEOVER_RETRIES {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    f.write_all(token.as_bytes())?;
                    // The claim must be durable before we start writing
                    // the ledger it protects.
                    f.sync_all()?;
                    drop(f);
                    crate::checkpoint::fsync_dir(dir)?;
                    return Ok(RunLock { path, token });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let held = std::fs::read_to_string(&path).unwrap_or_default();
                    match parse_token(&held) {
                        Some((pid, start)) if holder_is_alive(pid, start) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "{} is locked by live process {pid}; a concurrent \
                                     supervisor on one run-dir would corrupt the ledger \
                                     (remove {} only if you are sure that process is not \
                                     a sweep writer)",
                                    dir.display(),
                                    path.display(),
                                ),
                            ));
                        }
                        _ => {
                            // Stale (dead PID, recycled PID, or garbage
                            // content): take it over. Ignore a NotFound
                            // race — someone else's takeover beat ours,
                            // and the retry will sort out who wins.
                            match std::fs::remove_file(&path) {
                                Ok(()) => {}
                                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "{}: could not claim {LOCK_FILE} after {TAKEOVER_RETRIES} stale-lock \
                 takeover attempts (another writer keeps recreating it)",
                dir.display()
            ),
        ))
    }

    /// The lock file path (tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for RunLock {
    fn drop(&mut self) {
        // Release only if we still own it: a stale-takeover of *our*
        // token cannot have happened while we are alive, but be
        // defensive — never delete someone else's claim.
        if std::fs::read_to_string(&self.path).is_ok_and(|held| held == self.token) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// The lock file body for `pid`: `pid <n> start <ticks>\n`, where the
/// start-time field is `-` when `/proc` is unavailable.
fn lock_token(pid: u32) -> String {
    match proc_start_time(pid) {
        Some(t) => format!("pid {pid} start {t}\n"),
        None => format!("pid {pid} start -\n"),
    }
}

/// Parse a lock file body; `None` for garbage (treated as stale).
fn parse_token(s: &str) -> Option<(u32, Option<u64>)> {
    let mut it = s.split_whitespace();
    if it.next()? != "pid" {
        return None;
    }
    let pid: u32 = it.next()?.parse().ok()?;
    let start = match (it.next(), it.next()) {
        (Some("start"), Some("-")) => None,
        (Some("start"), Some(t)) => Some(t.parse().ok()?),
        _ => None,
    };
    Some((pid, start))
}

/// Field 22 (`starttime`, in clock ticks since boot) of
/// `/proc/<pid>/stat` — the cheap Linux defence against PID recycling.
/// `None` off-Linux or for a vanished process.
fn proc_start_time(pid: u32) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // comm (field 2) may contain spaces and parens; fields resume after
    // the *last* ')'. starttime is overall field 22 = index 19 there.
    let rest = stat.get(stat.rfind(')')? + 2..)?;
    rest.split(' ').nth(19)?.parse().ok()
}

/// Is the recorded holder still the same live process?
fn holder_is_alive(pid: u32, recorded_start: Option<u64>) -> bool {
    if !pid_alive(pid) {
        return false;
    }
    match (recorded_start, proc_start_time(pid)) {
        // Start times known on both sides: alive only if it is the SAME
        // incarnation of the PID.
        (Some(rec), Some(now)) => rec == now,
        // A PID that matches our own but predates us (e.g. a container
        // restarting as PID 1) cannot be a live concurrent writer.
        _ if pid == std::process::id() => false,
        // No start-time evidence either way: trust the kill(0) probe.
        _ => true,
    }
}

/// `kill(pid, 0)` probe: signal 0 delivers nothing but performs the
/// permission/existence checks. EPERM still means "exists".
#[cfg(unix)]
fn pid_alive(pid: u32) -> bool {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let Ok(pid) = i32::try_from(pid) else { return false };
    if unsafe { kill(pid, 0) } == 0 {
        return true;
    }
    // EPERM (1): the process exists but belongs to someone else.
    std::io::Error::last_os_error().raw_os_error() == Some(1)
}

/// Without a portable liveness probe, every lock looks stale. That errs
/// toward takeover — the same availability-over-exclusion tradeoff a
/// crashed-owner file forces anyway — and this workspace only targets
/// unix in practice.
#[cfg(not(unix))]
fn pid_alive(_pid: u32) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("noc-lock-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = scratch("rr");
        let lock = RunLock::acquire(&dir).expect("fresh dir must lock");
        assert!(lock.path().exists());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists(), "drop must release");
        let _again = RunLock::acquire(&dir).expect("released lock must re-acquire");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_holder_blocks_second_acquire() {
        let dir = scratch("live");
        let _held = RunLock::acquire(&dir).unwrap();
        // The holder is this very (live) process, recorded with its real
        // start time, so the incarnation check confirms liveness.
        let e = RunLock::acquire(&dir).expect_err("second writer must be refused");
        assert_eq!(e.kind(), io::ErrorKind::WouldBlock);
        assert!(e.to_string().contains("locked by live process"), "got: {e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_dead_pid_is_taken_over() {
        let dir = scratch("stale");
        std::fs::create_dir_all(&dir).unwrap();
        // A PID from the far end of the default pid space: almost
        // certainly dead, and if alive the start time (0) will not match.
        std::fs::write(dir.join(LOCK_FILE), "pid 4194303 start 0\n").unwrap();
        let lock = RunLock::acquire(&dir).expect("dead holder must be taken over");
        assert!(std::fs::read_to_string(lock.path())
            .unwrap()
            .contains(&format!("pid {}", std::process::id())));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_lock_is_stale() {
        let dir = scratch("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE), "not a lock token").unwrap();
        RunLock::acquire(&dir).expect("garbage content is stale, not fatal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn token_round_trips() {
        assert_eq!(parse_token("pid 42 start 123\n"), Some((42, Some(123))));
        assert_eq!(parse_token("pid 42 start -\n"), Some((42, None)));
        assert_eq!(parse_token(""), None);
        assert_eq!(parse_token("pid nope"), None);
        let own = lock_token(std::process::id());
        let (pid, _start) = parse_token(&own).expect("own token parses");
        assert_eq!(pid, std::process::id());
    }
}
