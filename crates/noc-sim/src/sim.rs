//! Single-simulation driver implementing the paper's methodology.
//!
//! A run is: **warm-up** (traffic flows, nothing measured) → **measurement
//! window** (latency recorded for packets created in the window; accepted
//! throughput counted at the ejectors) → **drain** (injection stops, the
//! window's packets finish; bounded). Seeds are explicit, so every result
//! is reproducible.

use std::time::Instant;

use noc_core::obs::Observer;
use noc_core::{FaultConfig, Network, RouterConfig};
use noc_topology::Topology;
use noc_traffic::{BernoulliInjector, TrafficPattern};

use crate::metrics::{EngineProfile, SimResult};
use crate::obs::SampleSeries;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Offered load in flits/core/cycle.
    pub rate: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Packet length in flits.
    pub packet_len: u16,
    /// Warm-up cycles (not measured).
    pub warmup: u64,
    /// Measurement-window cycles.
    pub measure: u64,
    /// Maximum drain cycles after the window (injection continues during
    /// drain so the network stays in steady state, but measurement stops).
    pub drain: u64,
    /// RNG seed.
    pub seed: u64,
    /// Router microarchitecture.
    pub router: RouterConfig,
    /// Capture a state [`Sample`](crate::obs::Sample) every this many
    /// cycles (0 = sampling off). Sampling reads counters the engine
    /// maintains anyway, so it never changes simulation results.
    pub sample_every: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rate: 0.05,
            pattern: TrafficPattern::Uniform,
            packet_len: 4,
            warmup: 2_000,
            measure: 10_000,
            drain: 30_000,
            seed: 0x0517_2018, // IPDPS 2018
            router: RouterConfig::default(),
            sample_every: 0,
        }
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    net: Network,
    injector: BernoulliInjector,
    cfg: SimConfig,
    name: String,
    cores: usize,
}

impl Simulation {
    /// Build the topology and attach the injector.
    pub fn new(topo: &dyn Topology, cfg: SimConfig) -> Self {
        let net = topo.build(cfg.router);
        let injector = BernoulliInjector::new(cfg.rate, cfg.packet_len, cfg.pattern, cfg.seed);
        let cores = net.num_cores();
        Simulation { net, injector, cfg, name: topo.name(), cores }
    }

    /// Attach an engine event observer (e.g. a
    /// [`RingRecorder`](crate::obs::RingRecorder)); recover it from
    /// `SimResult::net` after the run via `Network::take_observer`.
    pub fn attach_observer(&mut self, obs: Box<dyn Observer>) {
        self.net.set_observer(obs);
    }

    /// Builder-style [`Simulation::attach_observer`].
    pub fn with_observer(mut self, obs: Box<dyn Observer>) -> Self {
        self.attach_observer(obs);
        self
    }

    /// Attach a fault model (scheduled failures + link error process); see
    /// `noc_core::fault`. With an empty schedule and zero BER the model is
    /// inert and results are bit-identical to a run without it.
    pub fn attach_faults(&mut self, cfg: FaultConfig) {
        self.net.attach_faults(cfg);
    }

    /// Builder-style [`Simulation::attach_faults`].
    pub fn with_faults(mut self, cfg: FaultConfig) -> Self {
        self.attach_faults(cfg);
        self
    }

    /// The underlying network, e.g. to resolve wireless bands to channel
    /// ids when building a [`noc_core::FaultSchedule`].
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Run warm-up, measurement and drain; return the metrics.
    pub fn run(mut self) -> SimResult {
        let cfg = self.cfg;
        let mut series = (cfg.sample_every > 0).then(|| SampleSeries::new(cfg.sample_every));
        // Warm-up.
        let t0 = Instant::now();
        self.run_cycles(cfg.warmup, &mut series);
        let warmup_secs = t0.elapsed().as_secs_f64();
        // Measurement window.
        let window_start = self.net.now;
        self.net.stats.measure_from = window_start;
        self.net.stats.measure_until = window_start + cfg.measure;
        let ejected_at_start = self.net.stats.flits_ejected;
        let t1 = Instant::now();
        self.run_cycles(cfg.measure, &mut series);
        let measure_secs = t1.elapsed().as_secs_f64();
        let ejected_at_end = self.net.stats.flits_ejected;
        // Drain: keep offering traffic (steady state) until the window's
        // packets are delivered or the budget runs out.
        let t2 = Instant::now();
        let mut drained = 0;
        while drained < cfg.drain && self.window_packets_outstanding() {
            self.injector.offer(&mut self.net);
            self.net.step();
            drained += 1;
            if let Some(s) = series.as_mut() {
                if self.net.now.is_multiple_of(s.interval) {
                    s.record(&self.net);
                }
            }
        }
        let drain_secs = t2.elapsed().as_secs_f64();
        if let Some(s) = series.as_mut() {
            // Close the series exactly at the final cycle, even when the
            // run length is not a multiple of the interval.
            s.record(&self.net);
        }
        let throughput =
            (ejected_at_end - ejected_at_start) as f64 / (cfg.measure as f64 * self.cores as f64);
        let total_secs = warmup_secs + measure_secs + drain_secs;
        let events: u64 = self.net.stats.buffer_writes.iter().sum::<u64>()
            + self.net.stats.router_traversals.iter().sum::<u64>();
        let profile = EngineProfile {
            warmup_secs,
            measure_secs,
            drain_secs,
            total_secs,
            cycles_per_sec: if total_secs > 0.0 { self.net.now as f64 / total_secs } else { 0.0 },
            events_per_sec: if total_secs > 0.0 { events as f64 / total_secs } else { 0.0 },
        };
        SimResult::collect(self.name, self.net, cfg, throughput, profile, series)
    }

    /// Advance `n` cycles, offering traffic each cycle and sampling on
    /// interval boundaries. Without sampling this is exactly
    /// `BernoulliInjector::drive`; with sampling the per-cycle sequence is
    /// identical (offer, then step), so results match bit for bit.
    fn run_cycles(&mut self, n: u64, series: &mut Option<SampleSeries>) {
        match series {
            None => self.injector.drive(&mut self.net, n),
            Some(s) => {
                for _ in 0..n {
                    self.injector.offer(&mut self.net);
                    self.net.step();
                    if self.net.now.is_multiple_of(s.interval) {
                        s.record(&self.net);
                    }
                }
            }
        }
    }

    /// Heuristic: outstanding window packets exist while the in-network flit
    /// count stays high and latency samples keep arriving. We simply bound
    /// drain by watching whether the latency count still grows.
    fn window_packets_outstanding(&self) -> bool {
        // When saturated the source backlog never empties; rely on the
        // drain budget. Before saturation, stop early once quiescent.
        !self.net.quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::CMesh;

    #[test]
    fn low_load_run_produces_metrics() {
        let cfg = SimConfig {
            rate: 0.02,
            warmup: 200,
            measure: 1_000,
            drain: 5_000,
            ..Default::default()
        };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        assert!(r.avg_latency > 5.0, "latency {}", r.avg_latency);
        assert!(r.throughput > 0.0);
        assert!(r.packets_measured > 0);
        // At low load, accepted ≈ offered.
        assert!((r.throughput - 0.02).abs() < 0.01, "throughput {}", r.throughput);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg =
            SimConfig { rate: 0.03, warmup: 100, measure: 500, drain: 2_000, ..Default::default() };
        let a = Simulation::new(&CMesh::new(64), cfg).run();
        let b = Simulation::new(&CMesh::new(64), cfg).run();
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn saturating_load_caps_throughput() {
        let cfg =
            SimConfig { rate: 1.0, warmup: 500, measure: 2_000, drain: 0, ..Default::default() };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        // Accepted throughput must be well below the offered 1.0.
        assert!(r.throughput < 0.8, "throughput {}", r.throughput);
        assert!(r.throughput > 0.05);
    }
}
