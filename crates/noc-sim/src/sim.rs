//! Single-simulation driver implementing the paper's methodology.
//!
//! A run is: **warm-up** (traffic flows, nothing measured) → **measurement
//! window** (latency recorded for packets created in the window; accepted
//! throughput counted at the ejectors) → **drain** (injection stops, the
//! window's packets finish; bounded). Seeds are explicit, so every result
//! is reproducible.
//!
//! Long runs get three durability features, all off the per-cycle hot path:
//!
//! * **Checkpointing** ([`Simulation::set_checkpointing`]): every N cycles
//!   the full engine state is written atomically to a directory (see
//!   [`crate::checkpoint`]); [`Simulation::resume`] picks the run back up
//!   from the newest checkpoint with bit-identical final statistics.
//! * **Progress watchdog** (on by default): a stalled network — no flit
//!   movement for two watchdog intervals — aborts the run with a
//!   structured [`StallReport`] in [`SimResult::stall`] instead of
//!   spinning out the cycle budget.
//! * **Invariant auditing** ([`Simulation::set_audit_interval`]): the
//!   engine's full invariant sweep runs every N cycles and panics on the
//!   first violation, pinning corruption to a narrow cycle range.
//!
//! Phase boundaries are *absolute* cycles (`warmup`, `warmup + measure`,
//! `warmup + measure + drain`), so a resumed run applies the same window
//! transitions at the same cycles as the uninterrupted run it continues.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use noc_core::obs::Observer;
use noc_core::{
    CancelToken, FaultConfig, MetricsRegistry, Network, RecoveryReport, RouterConfig,
    StageProfiler, StallReport, Watchdog,
};
use noc_topology::Topology;
use noc_traffic::{BernoulliInjector, TrafficPattern};

use crate::checkpoint::{self, Checkpoint};
use crate::metrics::{EngineProfile, SimResult};
use crate::obs::SampleSeries;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Offered load in flits/core/cycle.
    pub rate: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Packet length in flits.
    pub packet_len: u16,
    /// Warm-up cycles (not measured).
    pub warmup: u64,
    /// Measurement-window cycles.
    pub measure: u64,
    /// Maximum drain cycles after the window (injection continues during
    /// drain so the network stays in steady state, but measurement stops).
    pub drain: u64,
    /// RNG seed.
    pub seed: u64,
    /// Router microarchitecture.
    pub router: RouterConfig,
    /// Capture a state [`Sample`](crate::obs::Sample) every this many
    /// cycles (0 = sampling off). Sampling reads counters the engine
    /// maintains anyway, so it never changes simulation results.
    pub sample_every: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rate: 0.05,
            pattern: TrafficPattern::Uniform,
            packet_len: 4,
            warmup: 2_000,
            measure: 10_000,
            drain: 30_000,
            seed: 0x0517_2018, // IPDPS 2018
            router: RouterConfig::default(),
            sample_every: 0,
        }
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    net: Network,
    injector: BernoulliInjector,
    cfg: SimConfig,
    name: String,
    cores: usize,
    /// Write a checkpoint every this many cycles (0 = off).
    checkpoint_every: u64,
    checkpoint_dir: Option<PathBuf>,
    /// Watchdog check interval in cycles (0 = watchdog off).
    watchdog_interval: u64,
    /// Packets drained per watchdog-triggered recovery (0 = recovery off:
    /// a stall aborts the run with a [`StallReport`], the pre-recovery
    /// behaviour).
    recovery_budget: usize,
    /// Recovery attempts remaining before the watchdog gives up and the
    /// run ends in a stall after all.
    recovery_attempts: u32,
    /// Recoveries performed so far this run.
    recoveries: Vec<RecoveryReport>,
    /// A checkpoint read by [`Simulation::resume`], applied at the start
    /// of [`Simulation::run`] — *after* the caller has attached the same
    /// fault model the checkpointed run had.
    pending_resume: Option<Checkpoint>,
    /// Set by the per-cycle cancel poll: the armed [`CancelToken`] fired
    /// and the run stopped at a cycle boundary.
    cancelled: bool,
}

impl Simulation {
    /// Build the topology and attach the injector.
    pub fn new(topo: &dyn Topology, cfg: SimConfig) -> Self {
        let net = topo.build(cfg.router);
        let injector = BernoulliInjector::new(cfg.rate, cfg.packet_len, cfg.pattern, cfg.seed);
        let cores = net.num_cores();
        Simulation {
            net,
            injector,
            cfg,
            name: topo.name(),
            cores,
            checkpoint_every: 0,
            checkpoint_dir: None,
            watchdog_interval: noc_core::DEFAULT_WATCHDOG_INTERVAL,
            recovery_budget: 0,
            recovery_attempts: 0,
            recoveries: Vec::new(),
            pending_resume: None,
            cancelled: false,
        }
    }

    /// Resume from the newest checkpoint in `dir`: validates the topology
    /// name and traffic seed against `topo`/`cfg` before anything is
    /// restored. Fault models are **not** stored in checkpoints — attach
    /// the same [`FaultConfig`] (via [`Simulation::with_faults`]) the
    /// original run had before calling [`Simulation::run`]; the restore
    /// itself happens at the start of `run` and verifies the fault
    /// fingerprint (schedule length and seed).
    pub fn resume(topo: &dyn Topology, cfg: SimConfig, dir: &Path) -> io::Result<Self> {
        let Some((_, ckpt)) = checkpoint::latest_valid_checkpoint(dir)? else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no usable checkpoint found in {}", dir.display()),
            ));
        };
        Self::resume_from_checkpoint(topo, cfg, ckpt)
    }

    /// [`Simulation::resume`] from an explicit, already-read checkpoint
    /// (e.g. a specific mid-run file rather than the newest one).
    pub fn resume_from_checkpoint(
        topo: &dyn Topology,
        cfg: SimConfig,
        ckpt: Checkpoint,
    ) -> io::Result<Self> {
        let mut sim = Simulation::new(topo, cfg);
        let mismatch = |what: &str, have: &str, want: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint {what} mismatch: checkpoint has {have}, run has {want}"),
            )
        };
        if ckpt.topology != sim.name {
            return Err(mismatch("topology", &ckpt.topology, &sim.name));
        }
        if ckpt.seed != cfg.seed {
            return Err(mismatch("seed", &ckpt.seed.to_string(), &cfg.seed.to_string()));
        }
        let horizon = cfg.warmup + cfg.measure + cfg.drain;
        if ckpt.cycle > horizon {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint cycle {} is past the run horizon {horizon}", ckpt.cycle),
            ));
        }
        sim.pending_resume = Some(ckpt);
        Ok(sim)
    }

    /// Write a checkpoint into `dir` every `every` cycles (0 disables).
    pub fn set_checkpointing(&mut self, every: u64, dir: impl Into<PathBuf>) {
        self.checkpoint_every = every;
        self.checkpoint_dir = Some(dir.into());
    }

    /// Builder-style [`Simulation::set_checkpointing`].
    pub fn with_checkpointing(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.set_checkpointing(every, dir);
        self
    }

    /// Set the progress-watchdog interval in cycles; 0 disables the
    /// watchdog. Defaults to
    /// [`noc_core::DEFAULT_WATCHDOG_INTERVAL`]. The watchdog only reads
    /// counters, so it never changes simulation results — it only decides
    /// whether a stalled run is cut short.
    pub fn set_watchdog_interval(&mut self, interval: u64) {
        self.watchdog_interval = interval;
    }

    /// Builder-style [`Simulation::set_watchdog_interval`].
    pub fn with_watchdog_interval(mut self, interval: u64) -> Self {
        self.set_watchdog_interval(interval);
        self
    }

    /// Enable watchdog-triggered deadlock **recovery**: when the watchdog
    /// declares a stall, instead of aborting, the engine drains the oldest
    /// blocked packet from up to `budget` stalled virtual channels
    /// (poisoning it and returning its buffer credits) and the run
    /// continues, up to `attempts` times. Each escape produces a
    /// [`RecoveryReport`] in [`SimResult::recoveries`]. With `budget = 0`
    /// (the default) a stall aborts the run as before.
    pub fn set_recovery(&mut self, budget: usize, attempts: u32) {
        self.recovery_budget = budget;
        self.recovery_attempts = attempts;
    }

    /// Builder-style [`Simulation::set_recovery`].
    pub fn with_recovery(mut self, budget: usize, attempts: u32) -> Self {
        self.set_recovery(budget, attempts);
        self
    }

    /// Run the engine's invariant audit every `every` cycles (0 = off);
    /// see `noc_core::invariants`. Auditing panics on the first violation.
    pub fn set_audit_interval(&mut self, every: u64) {
        self.net.set_audit_interval(every);
    }

    /// Builder-style [`Simulation::set_audit_interval`].
    pub fn with_audit_interval(mut self, every: u64) -> Self {
        self.set_audit_interval(every);
        self
    }

    /// Arm a cooperative cancellation token (see `noc_core::cancel`):
    /// the run stops at the next cycle boundary after the token fires —
    /// explicit [`CancelToken::cancel`] or a wall-clock timeout — and the
    /// result comes back with [`SimResult::cancelled`] set. Cancellation
    /// never corrupts state: checkpoints written before the stop stay
    /// valid, so a timed-out point can resume from its newest checkpoint
    /// on retry.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.net.set_cancel_token(token);
    }

    /// Builder-style [`Simulation::set_cancel`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.set_cancel(token);
        self
    }

    /// Attach an engine event observer (e.g. a
    /// [`RingRecorder`](crate::obs::RingRecorder)); recover it from
    /// `SimResult::net` after the run via `Network::take_observer`.
    pub fn attach_observer(&mut self, obs: Box<dyn Observer>) {
        self.net.set_observer(obs);
    }

    /// Builder-style [`Simulation::attach_observer`].
    pub fn with_observer(mut self, obs: Box<dyn Observer>) -> Self {
        self.attach_observer(obs);
        self
    }

    /// Attach a per-stage wall-clock profiler: stage times are sampled
    /// every `sample_every` cycles and a cumulative series point recorded
    /// every `series_every` cycles (0 = no series). Pure observation — a
    /// profiled run is bit-identical to an unprofiled one; the breakdown
    /// lands in [`EngineProfile::stages`].
    pub fn profile_stages(&mut self, sample_every: u64, series_every: u64) {
        self.net.set_profiler(StageProfiler::new(sample_every).with_series(series_every));
    }

    /// Builder-style [`Simulation::profile_stages`].
    pub fn with_stage_profiler(mut self, sample_every: u64, series_every: u64) -> Self {
        self.profile_stages(sample_every, series_every);
        self
    }

    /// Attach a spatial metrics registry aggregating by `topo`'s cluster
    /// structure, capturing a frame every `interval` cycles. Pure
    /// observation; retrieve the registry from `SimResult::net` via
    /// `Network::take_metrics` after the run.
    pub fn enable_metrics(&mut self, topo: &dyn Topology, interval: u64) {
        let map = crate::telemetry::cluster_map_for(topo, &self.net);
        self.net.attach_metrics(MetricsRegistry::new(map, interval));
    }

    /// Builder-style [`Simulation::enable_metrics`].
    pub fn with_metrics(mut self, topo: &dyn Topology, interval: u64) -> Self {
        self.enable_metrics(topo, interval);
        self
    }

    /// Arm the cluster-sharded parallel engine (see `noc_core::par`) with
    /// `threads` total threads, sharding by `topo`'s cluster structure.
    /// Returns whether the engine actually armed: `threads <= 1`, a
    /// single-cluster topology, or cluster-interleaved media fall back to
    /// the serial engine. Results are **bit-identical** either way — the
    /// engine's determinism contract guarantees the same statistics,
    /// checkpoints and event streams at every thread count.
    pub fn set_threads(&mut self, threads: usize, topo: &dyn Topology) -> bool {
        let map = crate::telemetry::cluster_map_for(topo, &self.net);
        self.net.set_parallel(threads, &map.cluster_of_router)
    }

    /// Builder-style [`Simulation::set_threads`].
    pub fn with_threads(mut self, threads: usize, topo: &dyn Topology) -> Self {
        self.set_threads(threads, topo);
        self
    }

    /// Attach a fault model (scheduled failures + link error process); see
    /// `noc_core::fault`. With an empty schedule and zero BER the model is
    /// inert and results are bit-identical to a run without it.
    pub fn attach_faults(&mut self, cfg: FaultConfig) {
        self.net.attach_faults(cfg);
    }

    /// Builder-style [`Simulation::attach_faults`].
    pub fn with_faults(mut self, cfg: FaultConfig) -> Self {
        self.attach_faults(cfg);
        self
    }

    /// The underlying network, e.g. to resolve wireless bands to channel
    /// ids when building a [`noc_core::FaultSchedule`].
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Run warm-up, measurement and drain; return the metrics.
    ///
    /// Phase boundaries are absolute cycles, so a resumed run re-enters
    /// the phase its checkpoint was taken in and finishes with statistics
    /// equal to the uninterrupted run's.
    ///
    /// # Panics
    ///
    /// When a pending resume checkpoint does not fit the built network —
    /// wrong shape or a missing/mismatched fault model. (Topology name and
    /// seed were already validated by [`Simulation::resume`].)
    pub fn run(mut self) -> SimResult {
        let cfg = self.cfg;
        let w_end = cfg.warmup;
        let m_end = cfg.warmup + cfg.measure;
        let run_end = m_end + cfg.drain;

        // `flits_ejected` at the window edges; `None` until the edge is
        // crossed. Checkpoints carry these so throughput accounting
        // survives an interruption anywhere in the run.
        let mut window_start: Option<u64> = None;
        let mut window_end: Option<u64> = None;
        let mut resumed_from = None;
        if let Some(ckpt) = self.pending_resume.take() {
            self.net.restore(&ckpt.snapshot).unwrap_or_else(|e| {
                panic!("cannot resume from checkpoint at cycle {}: {e}", ckpt.cycle)
            });
            self.injector.skip_cycles(ckpt.injector_offers, self.cores as u32);
            window_start = ckpt.ejected_window_start;
            window_end = ckpt.ejected_window_end;
            resumed_from = Some(ckpt.cycle);
        }
        let start_cycle = self.net.now;

        let mut series = (cfg.sample_every > 0).then(|| SampleSeries::new(cfg.sample_every));
        let mut dog = (self.watchdog_interval > 0).then(|| {
            Watchdog::new(self.watchdog_interval, self.net.now, self.net.progress_counter())
        });
        let mut stall: Option<Box<StallReport>> = None;

        // Warm-up.
        let t0 = Instant::now();
        self.run_phase(w_end, &mut series, &mut dog, &mut stall, (window_start, window_end));
        let warmup_secs = t0.elapsed().as_secs_f64();
        // Open the measurement window exactly at the warm-up boundary. A
        // resume past the boundary already carries `window_start`.
        if stall.is_none() && !self.cancelled && window_start.is_none() {
            debug_assert_eq!(self.net.now, w_end);
            self.net.stats.measure_from = w_end;
            self.net.stats.measure_until = m_end;
            window_start = Some(self.net.stats.flits_ejected);
        }

        // Measurement window.
        let t1 = Instant::now();
        self.run_phase(m_end, &mut series, &mut dog, &mut stall, (window_start, window_end));
        let measure_secs = t1.elapsed().as_secs_f64();
        if stall.is_none() && !self.cancelled && window_end.is_none() {
            window_end = Some(self.net.stats.flits_ejected);
        }

        // Drain: keep offering traffic (steady state) until the window's
        // packets are delivered or the budget runs out.
        let t2 = Instant::now();
        self.run_drain(run_end, &mut series, &mut dog, &mut stall, (window_start, window_end));
        let drain_secs = t2.elapsed().as_secs_f64();
        if let Some(s) = series.as_mut() {
            // Close the series exactly at the final cycle, even when the
            // run length is not a multiple of the interval.
            s.record(&self.net);
        }

        let ejected_start = window_start.unwrap_or(self.net.stats.flits_ejected);
        let ejected_end = window_end.unwrap_or(self.net.stats.flits_ejected);
        let throughput =
            (ejected_end - ejected_start) as f64 / (cfg.measure as f64 * self.cores as f64);
        let total_secs = warmup_secs + measure_secs + drain_secs;
        let events: u64 = self.net.stats.buffer_writes.iter().sum::<u64>()
            + self.net.stats.router_traversals.iter().sum::<u64>();
        let cycles_run = self.net.now - start_cycle;
        let profile = EngineProfile {
            warmup_secs,
            measure_secs,
            drain_secs,
            total_secs,
            cycles_run,
            cycles_per_sec: if total_secs > 0.0 { cycles_run as f64 / total_secs } else { 0.0 },
            events_per_sec: if total_secs > 0.0 { events as f64 / total_secs } else { 0.0 },
            stages: self.net.profiler().map(|p| p.breakdown()),
        };
        let recovery_enabled = self.recovery_budget > 0;
        let recoveries = std::mem::take(&mut self.recoveries);
        let cancelled = self.cancelled;
        let mut result = SimResult::collect(self.name, self.net, cfg, throughput, profile, series);
        result.recovery_exhausted = recovery_enabled && stall.is_some();
        result.stall = stall;
        result.recoveries = recoveries;
        result.resumed_from = resumed_from;
        result.cancelled = cancelled;
        result
    }

    /// Advance to absolute cycle `until`, offering traffic each cycle;
    /// stops early on a watchdog stall. The per-cycle sequence (offer,
    /// step, sample) matches `BernoulliInjector::drive`, so results are
    /// bit-identical whether sampling, checkpointing or the watchdog are
    /// on or off.
    fn run_phase(
        &mut self,
        until: u64,
        series: &mut Option<SampleSeries>,
        dog: &mut Option<Watchdog>,
        stall: &mut Option<Box<StallReport>>,
        window: (Option<u64>, Option<u64>),
    ) {
        if stall.is_some() || self.cancelled {
            return;
        }
        while self.net.now < until {
            self.injector.offer(&mut self.net);
            self.net.step();
            if let Some(s) = series.as_mut() {
                if self.net.now.is_multiple_of(s.interval) {
                    s.record(&self.net);
                }
            }
            if self.post_step(dog, stall, window) {
                return;
            }
        }
    }

    /// The drain phase: like [`Simulation::run_phase`] but stops as soon
    /// as the network is quiescent.
    fn run_drain(
        &mut self,
        until: u64,
        series: &mut Option<SampleSeries>,
        dog: &mut Option<Watchdog>,
        stall: &mut Option<Box<StallReport>>,
        window: (Option<u64>, Option<u64>),
    ) {
        if stall.is_some() || self.cancelled {
            return;
        }
        while self.net.now < until && self.window_packets_outstanding() {
            self.injector.offer(&mut self.net);
            self.net.step();
            if let Some(s) = series.as_mut() {
                if self.net.now.is_multiple_of(s.interval) {
                    s.record(&self.net);
                }
            }
            if self.post_step(dog, stall, window) {
                return;
            }
        }
    }

    /// Per-cycle bookkeeping after `step`: periodic checkpoint write and
    /// watchdog poll. Returns `true` when the run should stop (stall).
    fn post_step(
        &mut self,
        dog: &mut Option<Watchdog>,
        stall: &mut Option<Box<StallReport>>,
        window: (Option<u64>, Option<u64>),
    ) -> bool {
        // Cooperative cancellation: stop at this cycle boundary. When
        // checkpointing is on, force a write at the cancel cycle so a
        // supervised resume re-executes as little as possible.
        if self.net.cancel_requested() {
            self.cancelled = true;
        }
        if self.checkpoint_every > 0
            && (self.cancelled || self.net.now.is_multiple_of(self.checkpoint_every))
        {
            if let Some(dir) = &self.checkpoint_dir {
                let ckpt = Checkpoint {
                    topology: self.name.clone(),
                    seed: self.cfg.seed,
                    cycle: self.net.now,
                    injector_offers: self.injector.offers(),
                    ejected_window_start: window.0,
                    ejected_window_end: window.1,
                    snapshot: self.net.snapshot(),
                };
                if let Err(e) = checkpoint::write_checkpoint(dir, &ckpt) {
                    // A failed checkpoint write must not kill a long run;
                    // the run stays correct, only durability suffers.
                    eprintln!(
                        "[checkpoint] cycle {}: write to {} failed: {e}",
                        self.net.now,
                        dir.display()
                    );
                }
            }
        }
        if self.cancelled {
            return true;
        }
        if let Some(d) = dog.as_mut() {
            if d.due(self.net.now)
                && d.poll(self.net.now, self.net.progress_counter())
                && !self.net.quiescent()
            {
                let report = self.net.stall_report(d.progressed_at(), false);
                if self.recovery_budget > 0 && self.recovery_attempts > 0 {
                    let rec = self.net.recover(&report, self.recovery_budget);
                    if !rec.is_empty() {
                        self.recovery_attempts -= 1;
                        self.recoveries.push(*rec);
                        d.reset(self.net.now, self.net.progress_counter());
                        return false;
                    }
                }
                *stall = Some(report);
                return true;
            }
        }
        false
    }

    /// Heuristic: outstanding window packets exist while the in-network flit
    /// count stays high and latency samples keep arriving. We simply bound
    /// drain by watching whether the latency count still grows.
    fn window_packets_outstanding(&self) -> bool {
        // When saturated the source backlog never empties; rely on the
        // drain budget. Before saturation, stop early once quiescent.
        !self.net.quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::CMesh;

    #[test]
    fn low_load_run_produces_metrics() {
        let cfg = SimConfig {
            rate: 0.02,
            warmup: 200,
            measure: 1_000,
            drain: 5_000,
            ..Default::default()
        };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        assert!(r.avg_latency > 5.0, "latency {}", r.avg_latency);
        assert!(r.throughput > 0.0);
        assert!(r.packets_measured > 0);
        assert!(r.stall.is_none());
        assert!(r.resumed_from.is_none());
        assert_eq!(r.profile.cycles_run, r.cycles);
        // At low load, accepted ≈ offered.
        assert!((r.throughput - 0.02).abs() < 0.01, "throughput {}", r.throughput);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg =
            SimConfig { rate: 0.03, warmup: 100, measure: 500, drain: 2_000, ..Default::default() };
        let a = Simulation::new(&CMesh::new(64), cfg).run();
        let b = Simulation::new(&CMesh::new(64), cfg).run();
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn watchdog_and_audit_do_not_change_results() {
        let cfg =
            SimConfig { rate: 0.03, warmup: 100, measure: 500, drain: 2_000, ..Default::default() };
        let plain = Simulation::new(&CMesh::new(64), cfg).with_watchdog_interval(0).run();
        let guarded = Simulation::new(&CMesh::new(64), cfg)
            .with_watchdog_interval(64)
            .with_audit_interval(50)
            .run();
        assert_eq!(plain.net.stats, guarded.net.stats);
        assert!(guarded.stall.is_none());
    }

    #[test]
    fn saturating_load_caps_throughput() {
        let cfg =
            SimConfig { rate: 1.0, warmup: 500, measure: 2_000, drain: 0, ..Default::default() };
        let r = Simulation::new(&CMesh::new(64), cfg).run();
        // Accepted throughput must be well below the offered 1.0.
        assert!(r.throughput < 0.8, "throughput {}", r.throughput);
        assert!(r.throughput > 0.05);
    }

    #[test]
    fn pre_cancelled_token_stops_run_early() {
        let cfg = SimConfig {
            rate: 0.03,
            warmup: 500,
            measure: 2_000,
            drain: 5_000,
            ..Default::default()
        };
        let token = noc_core::CancelToken::new();
        token.cancel();
        let r = Simulation::new(&CMesh::new(64), cfg).with_cancel(token).run();
        assert!(r.cancelled);
        // The token is polled at the first cycle boundary, so essentially no
        // simulated time elapses and no measurement window opens.
        assert!(r.cycles <= 1, "ran {} cycles", r.cycles);
        assert_eq!(r.packets_measured, 0);
    }

    #[test]
    fn uncancelled_token_is_inert() {
        let cfg =
            SimConfig { rate: 0.03, warmup: 100, measure: 500, drain: 2_000, ..Default::default() };
        let plain = Simulation::new(&CMesh::new(64), cfg).run();
        let armed =
            Simulation::new(&CMesh::new(64), cfg).with_cancel(noc_core::CancelToken::new()).run();
        assert!(!armed.cancelled);
        assert_eq!(plain.net.stats, armed.net.stats);
    }

    #[test]
    fn resume_rejects_mismatched_topology_and_seed() {
        let cfg = SimConfig { warmup: 50, measure: 100, drain: 100, ..Default::default() };
        let sim = Simulation::new(&CMesh::new(64), cfg);
        let ckpt = Checkpoint {
            topology: "SOMETHING-ELSE".into(),
            seed: cfg.seed,
            cycle: 10,
            injector_offers: 10,
            ejected_window_start: None,
            ejected_window_end: None,
            snapshot: sim.network().snapshot(),
        };
        let Err(err) = Simulation::resume_from_checkpoint(&CMesh::new(64), cfg, ckpt.clone())
        else {
            panic!("wrong topology accepted")
        };
        assert!(err.to_string().contains("topology"), "got: {err}");
        let ckpt2 = Checkpoint { topology: "CMESH-64".into(), seed: cfg.seed + 1, ..ckpt };
        let Err(err) = Simulation::resume_from_checkpoint(&CMesh::new(64), cfg, ckpt2) else {
            panic!("wrong seed accepted")
        };
        assert!(err.to_string().contains("seed"), "got: {err}");
    }
}
