//! Periodic time-series sampling of network state.
//!
//! A [`SampleSeries`] is fed a [`Network`] reference every `interval`
//! cycles (the simulation driver does this when
//! [`crate::SimConfig::sample_every`] is nonzero) and derives per-interval
//! deltas from the engine's cumulative counters: injection/ejection rates,
//! channel and bus utilization, queue depths. Two detectors run over the
//! finished series:
//!
//! * [`SampleSeries::convergence_cycle`] — when the in-flight flit
//!   population stops drifting (the network has warmed up); useful for
//!   checking that a configured warm-up window was long enough.
//! * [`SampleSeries::saturation_onset`] — when source queues start growing
//!   without bound (offered load exceeds capacity); drives the per-point
//!   saturation annotations on load sweeps.

use noc_core::Network;

/// State captured at one sample point. Rates and utilizations cover the
/// interval since the previous sample (or cycle 0 for the first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Flits in flight inside the network.
    pub in_flight: u64,
    /// Packets queued at source NICs (network-wide).
    pub backlog: u64,
    /// Deepest single source queue.
    pub max_nic_backlog: u64,
    /// Flits injected during the interval.
    pub injected: u64,
    /// Flits ejected during the interval.
    pub ejected: u64,
    /// Fraction of channel-cycles spent transmitting during the interval
    /// (serialization-weighted; 1.0 = every channel always busy).
    pub channel_util: f64,
    /// Same for shared buses.
    pub bus_util: f64,
    /// Buses whose medium was occupied at the sample instant.
    pub busy_buses: u64,
}

/// A growing series of [`Sample`]s plus the cursor state needed to turn
/// cumulative engine counters into per-interval deltas.
#[derive(Debug, Clone)]
pub struct SampleSeries {
    /// Nominal sampling interval in cycles.
    pub interval: u64,
    /// Samples in capture order.
    pub samples: Vec<Sample>,
    cores: usize,
    prev_cycle: u64,
    prev_injected: u64,
    prev_ejected: u64,
    prev_channel_work: u64,
    prev_bus_work: u64,
}

impl SampleSeries {
    /// A series sampling every `interval` cycles (`interval >= 1`).
    pub fn new(interval: u64) -> Self {
        assert!(interval >= 1, "sample interval must be >= 1 cycle");
        SampleSeries {
            interval,
            samples: Vec::new(),
            cores: 0,
            prev_cycle: 0,
            prev_injected: 0,
            prev_ejected: 0,
            prev_channel_work: 0,
            prev_bus_work: 0,
        }
    }

    /// Capture one sample at the network's current cycle. Idempotent per
    /// cycle: a repeated call at the same cycle is ignored, so the driver
    /// can unconditionally take a final sample at the end of a run.
    pub fn record(&mut self, net: &Network) {
        let now = net.now;
        if self.samples.last().is_some_and(|s| s.cycle == now) {
            return;
        }
        self.cores = net.num_cores();
        let span = now.saturating_sub(self.prev_cycle).max(1);
        // Serialization-weighted cumulative work per medium class.
        let channel_work: u64 = net
            .channels()
            .iter()
            .zip(&net.stats.channel_flits)
            .map(|(c, &f)| f * u64::from(c.ser_cycles))
            .sum();
        let bus_work: u64 = net
            .buses()
            .iter()
            .zip(&net.stats.bus_flits)
            .map(|(b, &f)| f * u64::from(b.ser_cycles))
            .sum();
        let n_channels = net.channels().len() as u64;
        let n_buses = net.buses().len() as u64;
        let util = |work: u64, prev: u64, n: u64| {
            if n == 0 {
                0.0
            } else {
                (work - prev) as f64 / (span * n) as f64
            }
        };
        self.samples.push(Sample {
            cycle: now,
            in_flight: net.stats.flits_in_network(),
            backlog: net.source_backlog() as u64,
            max_nic_backlog: net.max_source_backlog() as u64,
            injected: net.stats.flits_injected - self.prev_injected,
            ejected: net.stats.flits_ejected - self.prev_ejected,
            channel_util: util(channel_work, self.prev_channel_work, n_channels),
            bus_util: util(bus_work, self.prev_bus_work, n_buses),
            busy_buses: net.buses().iter().filter(|b| b.is_busy(now)).count() as u64,
        });
        self.prev_cycle = now;
        self.prev_injected = net.stats.flits_injected;
        self.prev_ejected = net.stats.flits_ejected;
        self.prev_channel_work = channel_work;
        self.prev_bus_work = bus_work;
    }

    /// First cycle at which the in-flight flit population stopped drifting:
    /// consecutive 3-sample means within 10% (or ±2 flits) of each other.
    /// `None` when the series is too short or never settles.
    pub fn convergence_cycle(&self) -> Option<u64> {
        const WINDOW: usize = 3;
        if self.samples.len() < WINDOW + 1 {
            return None;
        }
        let mean = |i: usize| {
            self.samples[i..i + WINDOW].iter().map(|s| s.in_flight as f64).sum::<f64>()
                / WINDOW as f64
        };
        for i in 1..=self.samples.len() - WINDOW {
            let prev = mean(i - 1);
            let cur = mean(i);
            if (cur - prev).abs() <= (0.10 * prev).max(2.0) {
                return Some(self.samples[i + WINDOW - 1].cycle);
            }
        }
        None
    }

    /// Start of unbounded source-queue growth, or `None` when the network
    /// keeps up with the offered load. Returns the cycle of the earliest
    /// sample of the final monotone-growth stretch, provided the backlog
    /// grew by at least `max(cores/8, 8)` packets over that stretch.
    pub fn saturation_onset(&self) -> Option<u64> {
        let s = &self.samples;
        if s.len() < 2 {
            return None;
        }
        let mut j = s.len() - 1;
        while j > 0 && s[j - 1].backlog <= s[j].backlog {
            j -= 1;
        }
        let growth = s[s.len() - 1].backlog.saturating_sub(s[j].backlog);
        let threshold = (self.cores as u64 / 8).max(8);
        (growth >= threshold).then(|| s[j].cycle)
    }

    /// Whether the run saturated (see [`SampleSeries::saturation_onset`]).
    pub fn saturated(&self) -> bool {
        self.saturation_onset().is_some()
    }

    /// Render the series as CSV (header + one row per sample).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cycle,in_flight,backlog,max_nic_backlog,injected,ejected,channel_util,bus_util,busy_buses\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.4},{}\n",
                s.cycle,
                s.in_flight,
                s.backlog,
                s.max_nic_backlog,
                s.injected,
                s.ejected,
                s.channel_util,
                s.bus_util,
                s.busy_buses,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(interval: u64, in_flight: &[u64], backlog: &[u64]) -> SampleSeries {
        assert_eq!(in_flight.len(), backlog.len());
        let mut s = SampleSeries::new(interval);
        s.cores = 64;
        for (i, (&f, &b)) in in_flight.iter().zip(backlog).enumerate() {
            s.samples.push(Sample {
                cycle: (i as u64 + 1) * interval,
                in_flight: f,
                backlog: b,
                max_nic_backlog: b,
                injected: 0,
                ejected: 0,
                channel_util: 0.0,
                bus_util: 0.0,
                busy_buses: 0,
            });
        }
        s
    }

    #[test]
    fn convergence_found_once_population_settles() {
        let s = synthetic(100, &[10, 40, 80, 120, 124, 126, 125, 124, 126], &[0; 9]);
        let c = s.convergence_cycle().expect("series settles");
        // The ramp (10→120) keeps window means apart; settling begins
        // within the plateau.
        assert!((400..=800).contains(&c), "converged at {c}");
    }

    #[test]
    fn convergence_none_when_still_ramping() {
        let s = synthetic(50, &[10, 30, 60, 100, 150, 220], &[0; 6]);
        assert_eq!(s.convergence_cycle(), None);
    }

    #[test]
    fn saturation_detected_on_monotone_backlog_growth() {
        let s = synthetic(100, &[0; 8], &[0, 2, 1, 10, 40, 90, 160, 250]);
        // Growth stretch starts at the sample with backlog 1 (index 2).
        assert_eq!(s.saturation_onset(), Some(300));
        assert!(s.saturated());
    }

    #[test]
    fn no_saturation_when_backlog_bounded() {
        let s = synthetic(100, &[0; 6], &[3, 5, 2, 6, 4, 5]);
        assert_eq!(s.saturation_onset(), None);
        assert!(!s.saturated());
    }

    #[test]
    fn record_is_idempotent_per_cycle() {
        use noc_topology::Topology;
        let net = noc_topology::CMesh::new(64).build(noc_core::RouterConfig::default());
        let mut s = SampleSeries::new(10);
        s.record(&net);
        s.record(&net);
        assert_eq!(s.samples.len(), 1, "same-cycle re-record ignored");
        assert_eq!(s.samples[0].cycle, 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = synthetic(10, &[1, 2], &[0, 0]);
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("cycle,"));
    }
}
