//! Event export: Chrome trace format and JSONL.
//!
//! Both exporters emit JSON by hand — every field is a number or a fixed
//! ASCII name, so no serialization framework is required and the output is
//! byte-stable across runs.
//!
//! The Chrome trace (load into `chrome://tracing` or
//! <https://ui.perfetto.dev>) maps one simulation cycle to one microsecond
//! and groups events into synthetic processes:
//!
//! | pid | rows (`tid`) | content |
//! |---|---|---|
//! | 1 | source core | packet offered/injected/ejected/delivered and admission shed/defer (instants) |
//! | 2 | channel id | flit flight spans (send → arrival) |
//! | 3 | bus id | flit serialization spans on the shared medium |
//! | 4 | bus id | token-wait spans, grant instants, busy/idle edges |
//! | 5 | faulted medium id / spare band | outage spans, corruption/retransmit/failover, spare-band steering |
//! | 6 | router id | watchdog stall diagnostics (only when a stall fired) |

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use noc_core::obs::NocEvent;
use noc_core::{FaultTarget, RecoveryReport, StallReport};

const PID_PACKETS: u32 = 1;
const PID_CHANNELS: u32 = 2;
const PID_BUSES: u32 = 3;
const PID_TOKENS: u32 = 4;
const PID_FAULTS: u32 = 5;
const PID_WATCHDOG: u32 = 6;

/// Stalled-VC instants rendered into a Chrome trace before the per-router
/// detail is truncated (the stall summary instant reports the full count).
const MAX_STALL_INSTANTS: usize = 256;

/// `(kind, id)` rendering of a fault target for JSON output.
fn target_parts(target: FaultTarget) -> (&'static str, u32) {
    match target {
        FaultTarget::Channel(c) => ("channel", c),
        FaultTarget::Bus(b) => ("bus", b),
        FaultTarget::TokenRing(b) => ("token", b),
    }
}

/// Render events as a complete Chrome-trace JSON document.
pub fn chrome_trace(events: &[NocEvent]) -> String {
    chrome_trace_with_stall(events, None)
}

/// [`chrome_trace`], appending a watchdog stall diagnostic when one was
/// captured: a `stall` instant carrying the summary counters plus one
/// instant per stalled VC (row = router id, capped at
/// [`MAX_STALL_INSTANTS`]) and per frozen-or-held token.
pub fn chrome_trace_with_stall(events: &[NocEvent], stall: Option<&StallReport>) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 512);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut pids = vec![
        (PID_PACKETS, "packets"),
        (PID_CHANNELS, "channels"),
        (PID_BUSES, "buses"),
        (PID_TOKENS, "tokens"),
        (PID_FAULTS, "faults"),
    ];
    if stall.is_some() {
        pids.push((PID_WATCHDOG, "watchdog"));
    }
    for (pid, name) in pids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        chrome_event(&mut out, ev);
    }
    if let Some(r) = stall {
        chrome_stall(&mut out, r);
    }
    out.push_str("]}");
    out
}

/// Append the stall diagnostic to a non-empty Chrome event list.
fn chrome_stall(out: &mut String, r: &StallReport) {
    let _ = write!(
        out,
        ",{{\"name\":\"stall\",\"cat\":\"watchdog\",\"ph\":\"i\",\"s\":\"g\",\
         \"ts\":{},\"pid\":{PID_WATCHDOG},\"tid\":0,\
         \"args\":{{\"budget_exhausted\":{},\"progressed_at\":{},\
         \"undelivered_packets\":{},\"flits_in_network\":{},\"source_backlog\":{},\
         \"flit_retransmits\":{},\"stalled_vcs\":{},\"bus_owners\":{}}}}}",
        r.at,
        r.budget_exhausted,
        r.progressed_at,
        r.undelivered_packets,
        r.flits_in_network,
        r.source_backlog,
        r.flit_retransmits,
        r.stalled_vcs.len(),
        r.bus_owners.len(),
    );
    for v in r.stalled_vcs.iter().take(MAX_STALL_INSTANTS) {
        let _ = write!(
            out,
            ",{{\"name\":\"stalled-vc\",\"cat\":\"watchdog\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{PID_WATCHDOG},\"tid\":{},\
             \"args\":{{\"in_port\":{},\"vc\":{},\"state\":\"{}\",\"buffered\":{},\
             \"last_moved\":{}}}}}",
            r.at, v.router, v.in_port, v.vc, v.state, v.buffered, v.last_moved,
        );
    }
    for t in r.tokens.iter().take(MAX_STALL_INSTANTS) {
        let _ = write!(
            out,
            ",{{\"name\":\"token-at-stall\",\"cat\":\"watchdog\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{PID_TOKENS},\"tid\":{},\
             \"args\":{{\"holder\":{},\"available_at\":{},\"frozen\":{}}}}}",
            r.at, t.bus, t.holder, t.available_at, t.frozen,
        );
    }
}

fn chrome_event(out: &mut String, ev: &NocEvent) {
    match *ev {
        NocEvent::PacketOffered { at, packet, src, dst, len } => {
            let _ = write!(
                out,
                "{{\"name\":\"offer\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{src},\
                 \"args\":{{\"packet\":{packet},\"dst\":{dst},\"len\":{len}}}}}"
            );
        }
        NocEvent::PacketInjected { at, packet, src } => {
            let _ = write!(
                out,
                "{{\"name\":\"inject\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{src},\
                 \"args\":{{\"packet\":{packet}}}}}"
            );
        }
        NocEvent::FlitChannel { at, channel, packet, seq, arrives } => {
            let dur = arrives - at;
            let _ = write!(
                out,
                "{{\"name\":\"flit\",\"cat\":\"channel\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_CHANNELS},\"tid\":{channel},\
                 \"args\":{{\"packet\":{packet},\"seq\":{seq}}}}}"
            );
        }
        NocEvent::FlitBus { at, bus, writer, reader, packet, seq, busy_until } => {
            let dur = busy_until - at;
            let _ = write!(
                out,
                "{{\"name\":\"flit\",\"cat\":\"bus\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_BUSES},\"tid\":{bus},\
                 \"args\":{{\"packet\":{packet},\"seq\":{seq},\
                 \"writer\":{writer},\"reader\":{reader}}}}}"
            );
        }
        NocEvent::FlitEjected { at, core, packet, seq } => {
            let _ = write!(
                out,
                "{{\"name\":\"eject\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{core},\
                 \"args\":{{\"packet\":{packet},\"seq\":{seq}}}}}"
            );
        }
        NocEvent::PacketDelivered { at, packet, dst, latency } => {
            let _ = write!(
                out,
                "{{\"name\":\"deliver\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{dst},\
                 \"args\":{{\"packet\":{packet},\"latency\":{latency}}}}}"
            );
        }
        NocEvent::TokenGranted { at, bus, writer, waited } => {
            // Render the wait itself as a span ending at the grant, so
            // arbitration pressure is visible as solid bars.
            let ts = at - waited;
            let _ = write!(
                out,
                "{{\"name\":\"token-wait\",\"cat\":\"token\",\"ph\":\"X\",\
                 \"ts\":{ts},\"dur\":{waited},\"pid\":{PID_TOKENS},\"tid\":{bus},\
                 \"args\":{{\"writer\":{writer},\"waited\":{waited}}}}}"
            );
        }
        NocEvent::BusBusy { at, bus, until } => {
            let dur = until - at;
            let _ = write!(
                out,
                "{{\"name\":\"busy\",\"cat\":\"medium\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_TOKENS},\"tid\":{bus},\
                 \"args\":{{}}}}"
            );
        }
        NocEvent::BusIdle { at, bus } => {
            let _ = write!(
                out,
                "{{\"name\":\"idle\",\"cat\":\"medium\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_TOKENS},\"tid\":{bus},\"args\":{{}}}}"
            );
        }
        NocEvent::FlitCorrupted { at, target, packet, seq, retry } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"corrupt\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"packet\":{packet},\
                 \"seq\":{seq},\"retry\":{retry}}}}}"
            );
        }
        NocEvent::RetransmitScheduled { at, target, packet, seq, resend_at } => {
            let (tk, tid) = target_parts(target);
            let dur = resend_at - at;
            let _ = write!(
                out,
                "{{\"name\":\"retransmit\",\"cat\":\"fault\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"packet\":{packet},\"seq\":{seq}}}}}"
            );
        }
        NocEvent::LinkFailed { at, target, until } => {
            let (tk, tid) = target_parts(target);
            if until == u64::MAX {
                // Permanent fault: an instant, since the span never ends.
                let _ = write!(
                    out,
                    "{{\"name\":\"fail\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                     \"args\":{{\"medium\":\"{tk}\",\"permanent\":true}}}}"
                );
            } else {
                let dur = until - at;
                let _ = write!(
                    out,
                    "{{\"name\":\"outage\",\"cat\":\"fault\",\"ph\":\"X\",\
                     \"ts\":{at},\"dur\":{dur},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                     \"args\":{{\"medium\":\"{tk}\"}}}}"
                );
            }
        }
        NocEvent::LinkRecovered { at, target } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"recover\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\"}}}}"
            );
        }
        NocEvent::FailoverActivated { at, target, up } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"failover\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"up\":{up}}}}}"
            );
        }
        NocEvent::OfferShed { at, core } => {
            let _ = write!(
                out,
                "{{\"name\":\"shed\",\"cat\":\"throttle\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{core},\"args\":{{}}}}"
            );
        }
        NocEvent::OfferDeferred { at, core } => {
            let _ = write!(
                out,
                "{{\"name\":\"defer\",\"cat\":\"throttle\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{core},\"args\":{{}}}}"
            );
        }
        NocEvent::SpareSteered { at, band, channel, active, protect } => {
            let _ = write!(
                out,
                "{{\"name\":\"steer\",\"cat\":\"reconfig\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{band},\
                 \"args\":{{\"channel\":{channel},\"active\":{active},\
                 \"protect\":{protect}}}}}"
            );
        }
        NocEvent::CorruptionDetected { at, target, packet, seq, retry } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"e2e-corrupt\",\"cat\":\"integrity\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"packet\":{packet},\
                 \"seq\":{seq},\"retry\":{retry}}}}}"
            );
        }
        NocEvent::FlitSilentlyCorrupted { at, target, packet, seq, misroute } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"silent-corrupt\",\"cat\":\"integrity\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"packet\":{packet},\
                 \"seq\":{seq},\"misroute\":{misroute}}}}}"
            );
        }
        NocEvent::PacketRecovered { at, packet, src, dst, flits } => {
            let _ = write!(
                out,
                "{{\"name\":\"recovered\",\"cat\":\"integrity\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{src},\
                 \"args\":{{\"packet\":{packet},\"dst\":{dst},\"flits\":{flits}}}}}"
            );
        }
    }
}

/// Render events as JSONL: one self-describing JSON object per line, in
/// event order. Suited to `jq`-style post-processing.
pub fn jsonl(events: &[NocEvent]) -> String {
    jsonl_with_stall(events, None)
}

/// [`jsonl`], appending the watchdog stall diagnostic (when one was
/// captured) as a final `"kind":"stall"` line — see [`stall_report_json`].
pub fn jsonl_with_stall(events: &[NocEvent], stall: Option<&StallReport>) -> String {
    let mut out = String::with_capacity(events.len() * 80);
    for ev in events {
        jsonl_event(&mut out, ev);
        out.push('\n');
    }
    if let Some(r) = stall {
        out.push_str(&stall_report_json(r));
        out.push('\n');
    }
    out
}

/// One [`StallReport`] as a single-line JSON object (`"kind":"stall"`),
/// complete: every stalled VC, token state, and claimed bus-ownership slot.
pub fn stall_report_json(r: &StallReport) -> String {
    let mut out = String::with_capacity(128 + r.stalled_vcs.len() * 96);
    let _ = write!(
        out,
        "{{\"kind\":\"stall\",\"at\":{},\"progressed_at\":{},\"budget_exhausted\":{},\
         \"cancelled\":{},\
         \"undelivered_packets\":{},\"flits_in_network\":{},\"source_backlog\":{},\
         \"flit_retransmits\":{},\"stalled_vcs\":[",
        r.at,
        r.progressed_at,
        r.budget_exhausted,
        r.cancelled,
        r.undelivered_packets,
        r.flits_in_network,
        r.source_backlog,
        r.flit_retransmits,
    );
    for (i, v) in r.stalled_vcs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"router\":{},\"in_port\":{},\"vc\":{},\"buffered\":{},\"head_packet\":",
            v.router, v.in_port, v.vc, v.buffered,
        );
        push_opt(&mut out, v.head_packet.map(u128::from));
        let _ = write!(out, ",\"state\":\"{}\",\"out_port\":", v.state);
        push_opt(&mut out, v.out_port.map(u128::from));
        out.push_str(",\"out_vc\":");
        push_opt(&mut out, v.out_vc.map(u128::from));
        out.push_str(",\"out_credits\":");
        push_opt(&mut out, v.out_credits.map(u128::from));
        let _ = write!(out, ",\"last_moved\":{}}}", v.last_moved);
    }
    out.push_str("],\"tokens\":[");
    for (i, t) in r.tokens.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"bus\":{},\"holder\":{},\"available_at\":{},\"frozen\":{}}}",
            t.bus, t.holder, t.available_at, t.frozen,
        );
    }
    out.push_str("],\"bus_owners\":[");
    for (i, o) in r.bus_owners.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"bus\":{},\"reader\":{},\"vc\":{},\"writer\":{}}}",
            o.bus, o.reader, o.vc, o.writer,
        );
    }
    out.push_str("]}");
    out
}

/// One [`RecoveryReport`] as a single-line JSON object (`"kind":"recovery"`):
/// the watchdog fired, and instead of aborting, these packets were drained
/// from the stalled virtual channels (poisoned, their buffer credits
/// returned) so the rest of the traffic could make progress again.
pub fn recovery_report_json(r: &RecoveryReport) -> String {
    let mut out = String::with_capacity(96 + r.recovered.len() * 64);
    let _ = write!(
        out,
        "{{\"kind\":\"recovery\",\"at\":{},\"budget\":{},\"flits_flushed\":{},\"recovered\":[",
        r.at,
        r.budget,
        r.flits_flushed(),
    );
    for (i, p) in r.recovered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"packet\":{},\"src\":{},\"dst\":{},\"flits\":{}}}",
            p.packet, p.src, p.dst, p.flits,
        );
    }
    out.push_str("]}");
    out
}

/// `null` or the integer, for optional fields in hand-written JSON.
fn push_opt(out: &mut String, v: Option<u128>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

fn jsonl_event(out: &mut String, ev: &NocEvent) {
    let kind = ev.kind().name();
    match *ev {
        NocEvent::PacketOffered { at, packet, src, dst, len } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"packet\":{packet},\
                 \"src\":{src},\"dst\":{dst},\"len\":{len}}}"
            );
        }
        NocEvent::PacketInjected { at, packet, src } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"packet\":{packet},\"src\":{src}}}"
            );
        }
        NocEvent::FlitChannel { at, channel, packet, seq, arrives } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"channel\":{channel},\
                 \"packet\":{packet},\"seq\":{seq},\"arrives\":{arrives}}}"
            );
        }
        NocEvent::FlitBus { at, bus, writer, reader, packet, seq, busy_until } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus},\"writer\":{writer},\
                 \"reader\":{reader},\"packet\":{packet},\"seq\":{seq},\
                 \"busy_until\":{busy_until}}}"
            );
        }
        NocEvent::FlitEjected { at, core, packet, seq } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"core\":{core},\
                 \"packet\":{packet},\"seq\":{seq}}}"
            );
        }
        NocEvent::PacketDelivered { at, packet, dst, latency } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"packet\":{packet},\
                 \"dst\":{dst},\"latency\":{latency}}}"
            );
        }
        NocEvent::TokenGranted { at, bus, writer, waited } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus},\
                 \"writer\":{writer},\"waited\":{waited}}}"
            );
        }
        NocEvent::BusBusy { at, bus, until } => {
            let _ =
                write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus},\"until\":{until}}}");
        }
        NocEvent::BusIdle { at, bus } => {
            let _ = write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus}}}");
        }
        NocEvent::FlitCorrupted { at, target, packet, seq, retry } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                 \"packet\":{packet},\"seq\":{seq},\"retry\":{retry}}}"
            );
        }
        NocEvent::RetransmitScheduled { at, target, packet, seq, resend_at } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                 \"packet\":{packet},\"seq\":{seq},\"resend_at\":{resend_at}}}"
            );
        }
        NocEvent::LinkFailed { at, target, until } => {
            let (tk, tid) = target_parts(target);
            if until == u64::MAX {
                let _ = write!(
                    out,
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                     \"permanent\":true}}"
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                     \"until\":{until}}}"
                );
            }
        }
        NocEvent::LinkRecovered { at, target } => {
            let (tk, tid) = target_parts(target);
            let _ =
                write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid}}}");
        }
        NocEvent::FailoverActivated { at, target, up } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\"up\":{up}}}"
            );
        }
        NocEvent::OfferShed { at, core } => {
            let _ = write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"core\":{core}}}");
        }
        NocEvent::OfferDeferred { at, core } => {
            let _ = write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"core\":{core}}}");
        }
        NocEvent::SpareSteered { at, band, channel, active, protect } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"band\":{band},\"channel\":{channel},\
                 \"active\":{active},\"protect\":{protect}}}"
            );
        }
        NocEvent::CorruptionDetected { at, target, packet, seq, retry } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                 \"packet\":{packet},\"seq\":{seq},\"retry\":{retry}}}"
            );
        }
        NocEvent::FlitSilentlyCorrupted { at, target, packet, seq, misroute } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                 \"packet\":{packet},\"seq\":{seq},\"misroute\":{misroute}}}"
            );
        }
        NocEvent::PacketRecovered { at, packet, src, dst, flits } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"packet\":{packet},\
                 \"src\":{src},\"dst\":{dst},\"flits\":{flits}}}"
            );
        }
    }
}

/// Write a Chrome trace for `events` to `path`.
pub fn write_chrome_trace(path: &Path, events: &[NocEvent]) -> io::Result<()> {
    std::fs::write(path, chrome_trace(events))
}

/// Write a Chrome trace including the stall diagnostic, when one fired.
pub fn write_chrome_trace_with_stall(
    path: &Path,
    events: &[NocEvent],
    stall: Option<&StallReport>,
) -> io::Result<()> {
    std::fs::write(path, chrome_trace_with_stall(events, stall))
}

/// Write JSONL for `events` to `path`.
pub fn write_jsonl(path: &Path, events: &[NocEvent]) -> io::Result<()> {
    std::fs::write(path, jsonl(events))
}

/// Write JSONL including the stall diagnostic line, when one fired.
pub fn write_jsonl_with_stall(
    path: &Path,
    events: &[NocEvent],
    stall: Option<&StallReport>,
) -> io::Result<()> {
    std::fs::write(path, jsonl_with_stall(events, stall))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<NocEvent> {
        vec![
            NocEvent::PacketOffered { at: 0, packet: 7, src: 1, dst: 2, len: 4 },
            NocEvent::PacketInjected { at: 2, packet: 7, src: 1 },
            NocEvent::FlitChannel { at: 5, channel: 3, packet: 7, seq: 0, arrives: 9 },
            NocEvent::FlitBus {
                at: 6,
                bus: 0,
                writer: 2,
                reader: 0,
                packet: 7,
                seq: 0,
                busy_until: 8,
            },
            NocEvent::TokenGranted { at: 6, bus: 0, writer: 2, waited: 4 },
            NocEvent::BusBusy { at: 6, bus: 0, until: 8 },
            NocEvent::BusIdle { at: 8, bus: 0 },
            NocEvent::FlitEjected { at: 12, core: 2, packet: 7, seq: 3 },
            NocEvent::PacketDelivered { at: 13, packet: 7, dst: 2, latency: 13 },
            NocEvent::LinkFailed { at: 14, target: FaultTarget::Channel(3), until: 40 },
            NocEvent::FlitCorrupted {
                at: 15,
                target: FaultTarget::Channel(3),
                packet: 8,
                seq: 0,
                retry: 1,
            },
            NocEvent::RetransmitScheduled {
                at: 15,
                target: FaultTarget::Channel(3),
                packet: 8,
                seq: 0,
                resend_at: 25,
            },
            NocEvent::FailoverActivated { at: 20, target: FaultTarget::Channel(3), up: false },
            NocEvent::LinkRecovered { at: 40, target: FaultTarget::Channel(3) },
            NocEvent::OfferShed { at: 41, core: 1 },
            NocEvent::OfferDeferred { at: 42, core: 1 },
            NocEvent::SpareSteered { at: 44, band: 13, channel: 9, active: true, protect: false },
            NocEvent::CorruptionDetected {
                at: 45,
                target: FaultTarget::Channel(3),
                packet: 9,
                seq: 1,
                retry: 1,
            },
            NocEvent::FlitSilentlyCorrupted {
                at: 46,
                target: FaultTarget::Bus(0),
                packet: 10,
                seq: 0,
                misroute: true,
            },
            NocEvent::PacketRecovered { at: 47, packet: 11, src: 1, dst: 2, flits: 4 },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_rows() {
        let s = chrome_trace(&sample_events());
        let v: serde_json::Value = s.parse().expect("chrome trace must parse as JSON");
        let evs = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
        // 5 process metadata records + 20 events.
        assert_eq!(evs.len(), 25);
        let token_wait = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("token-wait"))
            .expect("token-wait span present");
        assert_eq!(
            token_wait.get("ts").and_then(|t| t.as_u64()),
            Some(2),
            "grant at 6 minus wait 4"
        );
        assert_eq!(token_wait.get("dur").and_then(|t| t.as_u64()), Some(4));
        assert!(evs.iter().any(|e| e.get("cat").and_then(|c| c.as_str()) == Some("channel")));
        // The transient outage renders as a 26-cycle span in the fault row.
        let outage = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("outage"))
            .expect("outage span present");
        assert_eq!(outage.get("dur").and_then(|t| t.as_u64()), Some(26));
        assert_eq!(outage.get("pid").and_then(|t| t.as_u64()), Some(PID_FAULTS as u64));
        // Spare-band steering renders in the faults process, row = band.
        let steer = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("steer"))
            .expect("steer instant present");
        assert_eq!(steer.get("cat").and_then(|c| c.as_str()), Some("reconfig"));
        assert_eq!(steer.get("tid").and_then(|t| t.as_u64()), Some(13));
        assert_eq!(steer["args"]["active"].as_bool(), Some(true));
        assert!(evs.iter().any(|e| e.get("name").and_then(|n| n.as_str()) == Some("shed")));
        // Integrity events render in the fault (detected/silent) and packet
        // (recovered) processes.
        let silent = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("silent-corrupt"))
            .expect("silent-corrupt instant present");
        assert_eq!(silent.get("cat").and_then(|c| c.as_str()), Some("integrity"));
        assert_eq!(silent["args"]["misroute"].as_bool(), Some(true));
        let rec = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("recovered"))
            .expect("recovered instant present");
        assert_eq!(rec.get("pid").and_then(|p| p.as_u64()), Some(PID_PACKETS as u64));
        assert_eq!(rec["args"]["flits"].as_u64(), Some(4));
    }

    #[test]
    fn jsonl_lines_parse_and_tag_kind() {
        let s = jsonl(&sample_events());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 20);
        for line in &lines {
            let v: serde_json::Value = line.parse().expect("each JSONL line parses");
            assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
            assert!(v.get("at").and_then(|a| a.as_u64()).is_some());
        }
        assert!(lines[4].contains("\"kind\":\"token_granted\""));
        assert!(lines[10].contains("\"kind\":\"flit_corrupted\""));
        assert!(lines[12].contains("\"kind\":\"failover_activated\""));
        assert!(lines[14].contains("\"kind\":\"offer_shed\""));
        assert!(lines[15].contains("\"kind\":\"offer_deferred\""));
        assert!(lines[16].contains("\"kind\":\"spare_steered\""));
        assert!(lines[17].contains("\"kind\":\"corruption_detected\""));
        assert!(lines[18].contains("\"kind\":\"flit_silently_corrupted\""));
        assert!(lines[19].contains("\"kind\":\"packet_recovered\""));
    }

    #[test]
    fn permanent_failure_renders_as_instant() {
        let evs = [NocEvent::LinkFailed { at: 5, target: FaultTarget::Bus(2), until: u64::MAX }];
        let s = chrome_trace(&evs);
        let v: serde_json::Value = s.parse().unwrap();
        let fail = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("fail"))
            .expect("permanent failure instant");
        assert_eq!(fail["ph"].as_str(), Some("i"));
        assert_eq!(fail["args"]["permanent"].as_bool(), Some(true));
        let l = jsonl(&evs);
        assert!(l.contains("\"permanent\":true"), "{l}");
        assert!(!l.contains("18446744073709551615"), "no u64::MAX leaking into JSON");
    }

    #[test]
    fn recovery_report_json_is_one_complete_line() {
        use noc_core::RecoveredPacket;
        let r = RecoveryReport {
            at: 12288,
            budget: 4,
            recovered: vec![
                RecoveredPacket { packet: 77, src: 1, dst: 9, flits: 4 },
                RecoveredPacket { packet: 78, src: 2, dst: 3, flits: 1 },
            ],
        };
        let line = recovery_report_json(&r);
        assert!(!line.contains('\n'));
        let v: serde_json::Value = line.parse().expect("recovery line parses");
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("recovery"));
        assert_eq!(v.get("at").and_then(|a| a.as_u64()), Some(12288));
        assert_eq!(v.get("flits_flushed").and_then(|f| f.as_u64()), Some(5));
        let recs = v.get("recovered").and_then(|a| a.as_array()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("packet").and_then(|p| p.as_u64()), Some(77));
    }

    #[test]
    fn empty_trace_still_valid() {
        let s = chrome_trace(&[]);
        let v: serde_json::Value = s.parse().unwrap();
        assert_eq!(v.get("traceEvents").and_then(|e| e.as_array()).map(|a| a.len()), Some(5));
        assert_eq!(jsonl(&[]), "");
    }

    fn sample_stall() -> StallReport {
        use noc_core::watchdog::{BusOwner, StalledVc, TokenState};
        StallReport {
            at: 8192,
            progressed_at: 4096,
            budget_exhausted: false,
            cancelled: false,
            undelivered_packets: 3,
            flits_in_network: 9,
            source_backlog: 2,
            flit_retransmits: 57,
            stalled_vcs: vec![StalledVc {
                router: 4,
                in_port: 1,
                vc: 2,
                buffered: 3,
                head_packet: Some(77),
                state: "active",
                out_port: Some(5),
                out_vc: Some(0),
                out_credits: Some(0),
                last_moved: 4090,
                owner: Some(77),
            }],
            tokens: vec![TokenState { bus: 0, holder: 3, available_at: 4100, frozen: true }],
            bus_owners: vec![BusOwner { bus: 0, reader: 1, vc: 0, writer: 3 }],
        }
    }

    #[test]
    fn stall_report_json_is_one_complete_line() {
        let r = sample_stall();
        let line = stall_report_json(&r);
        assert!(!line.contains('\n'));
        let v: serde_json::Value = line.parse().expect("stall line parses");
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("stall"));
        assert_eq!(v.get("at").and_then(|a| a.as_u64()), Some(8192));
        assert_eq!(v.get("budget_exhausted").and_then(|b| b.as_bool()), Some(false));
        let vcs = v.get("stalled_vcs").and_then(|a| a.as_array()).unwrap();
        assert_eq!(vcs.len(), 1);
        assert_eq!(vcs[0].get("head_packet").and_then(|p| p.as_u64()), Some(77));
        assert_eq!(vcs[0].get("state").and_then(|s| s.as_str()), Some("active"));
        assert_eq!(vcs[0].get("out_credits").and_then(|c| c.as_u64()), Some(0));
        let tokens = v.get("tokens").and_then(|a| a.as_array()).unwrap();
        assert_eq!(tokens[0].get("frozen").and_then(|f| f.as_bool()), Some(true));
        assert_eq!(v.get("bus_owners").and_then(|a| a.as_array()).map(|a| a.len()), Some(1));
    }

    #[test]
    fn stall_null_fields_render_as_null() {
        let mut r = sample_stall();
        r.stalled_vcs[0].head_packet = None;
        r.stalled_vcs[0].out_port = None;
        r.stalled_vcs[0].out_vc = None;
        r.stalled_vcs[0].out_credits = None;
        let line = stall_report_json(&r);
        let v: serde_json::Value = line.parse().unwrap();
        let vc = &v.get("stalled_vcs").and_then(|a| a.as_array()).unwrap()[0];
        assert!(vc.get("head_packet").is_some_and(|p| p.as_u64().is_none()));
        assert!(vc.get("out_port").is_some_and(|p| p.as_u64().is_none()));
    }

    #[test]
    fn jsonl_with_stall_appends_one_line() {
        let events = sample_events();
        let r = sample_stall();
        let s = jsonl_with_stall(&events, Some(&r));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 21, "20 events + 1 stall line");
        assert!(lines[20].starts_with("{\"kind\":\"stall\""));
        // Without a stall, byte-identical to plain jsonl.
        assert_eq!(jsonl_with_stall(&events, None), jsonl(&events));
    }

    #[test]
    fn chrome_trace_with_stall_adds_watchdog_process() {
        let events = sample_events();
        let r = sample_stall();
        let s = chrome_trace_with_stall(&events, Some(&r));
        let v: serde_json::Value = s.parse().expect("trace with stall parses");
        let evs = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 6 metadata + 20 events + 1 stall + 1 stalled VC + 1 token.
        assert_eq!(evs.len(), 29);
        let stall = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("stall"))
            .expect("stall instant present");
        assert_eq!(stall.get("pid").and_then(|p| p.as_u64()), Some(PID_WATCHDOG as u64));
        assert_eq!(
            stall.get("args").and_then(|a| a.get("stalled_vcs")).and_then(|n| n.as_u64()),
            Some(1)
        );
        assert!(evs.iter().any(|e| e.get("name").and_then(|n| n.as_str()) == Some("stalled-vc")));
        // Without a stall, byte-identical to the plain trace.
        assert_eq!(chrome_trace_with_stall(&events, None), chrome_trace(&events));
    }
}
