//! Event export: Chrome trace format and JSONL.
//!
//! Both exporters emit JSON by hand — every field is a number or a fixed
//! ASCII name, so no serialization framework is required and the output is
//! byte-stable across runs.
//!
//! The Chrome trace (load into `chrome://tracing` or
//! <https://ui.perfetto.dev>) maps one simulation cycle to one microsecond
//! and groups events into synthetic processes:
//!
//! | pid | rows (`tid`) | content |
//! |---|---|---|
//! | 1 | source core | packet offered/injected/ejected/delivered (instants) |
//! | 2 | channel id | flit flight spans (send → arrival) |
//! | 3 | bus id | flit serialization spans on the shared medium |
//! | 4 | bus id | token-wait spans, grant instants, busy/idle edges |
//! | 5 | faulted medium id | outage spans, corruption/retransmit/failover |

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use noc_core::obs::NocEvent;
use noc_core::FaultTarget;

const PID_PACKETS: u32 = 1;
const PID_CHANNELS: u32 = 2;
const PID_BUSES: u32 = 3;
const PID_TOKENS: u32 = 4;
const PID_FAULTS: u32 = 5;

/// `(kind, id)` rendering of a fault target for JSON output.
fn target_parts(target: FaultTarget) -> (&'static str, u32) {
    match target {
        FaultTarget::Channel(c) => ("channel", c),
        FaultTarget::Bus(b) => ("bus", b),
        FaultTarget::TokenRing(b) => ("token", b),
    }
}

/// Render events as a complete Chrome-trace JSON document.
pub fn chrome_trace(events: &[NocEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 512);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (pid, name) in [
        (PID_PACKETS, "packets"),
        (PID_CHANNELS, "channels"),
        (PID_BUSES, "buses"),
        (PID_TOKENS, "tokens"),
        (PID_FAULTS, "faults"),
    ] {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        chrome_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

fn chrome_event(out: &mut String, ev: &NocEvent) {
    match *ev {
        NocEvent::PacketOffered { at, packet, src, dst, len } => {
            let _ = write!(
                out,
                "{{\"name\":\"offer\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{src},\
                 \"args\":{{\"packet\":{packet},\"dst\":{dst},\"len\":{len}}}}}"
            );
        }
        NocEvent::PacketInjected { at, packet, src } => {
            let _ = write!(
                out,
                "{{\"name\":\"inject\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{src},\
                 \"args\":{{\"packet\":{packet}}}}}"
            );
        }
        NocEvent::FlitChannel { at, channel, packet, seq, arrives } => {
            let dur = arrives - at;
            let _ = write!(
                out,
                "{{\"name\":\"flit\",\"cat\":\"channel\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_CHANNELS},\"tid\":{channel},\
                 \"args\":{{\"packet\":{packet},\"seq\":{seq}}}}}"
            );
        }
        NocEvent::FlitBus { at, bus, writer, reader, packet, seq, busy_until } => {
            let dur = busy_until - at;
            let _ = write!(
                out,
                "{{\"name\":\"flit\",\"cat\":\"bus\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_BUSES},\"tid\":{bus},\
                 \"args\":{{\"packet\":{packet},\"seq\":{seq},\
                 \"writer\":{writer},\"reader\":{reader}}}}}"
            );
        }
        NocEvent::FlitEjected { at, core, packet, seq } => {
            let _ = write!(
                out,
                "{{\"name\":\"eject\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{core},\
                 \"args\":{{\"packet\":{packet},\"seq\":{seq}}}}}"
            );
        }
        NocEvent::PacketDelivered { at, packet, dst, latency } => {
            let _ = write!(
                out,
                "{{\"name\":\"deliver\",\"cat\":\"packet\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_PACKETS},\"tid\":{dst},\
                 \"args\":{{\"packet\":{packet},\"latency\":{latency}}}}}"
            );
        }
        NocEvent::TokenGranted { at, bus, writer, waited } => {
            // Render the wait itself as a span ending at the grant, so
            // arbitration pressure is visible as solid bars.
            let ts = at - waited;
            let _ = write!(
                out,
                "{{\"name\":\"token-wait\",\"cat\":\"token\",\"ph\":\"X\",\
                 \"ts\":{ts},\"dur\":{waited},\"pid\":{PID_TOKENS},\"tid\":{bus},\
                 \"args\":{{\"writer\":{writer},\"waited\":{waited}}}}}"
            );
        }
        NocEvent::BusBusy { at, bus, until } => {
            let dur = until - at;
            let _ = write!(
                out,
                "{{\"name\":\"busy\",\"cat\":\"medium\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_TOKENS},\"tid\":{bus},\
                 \"args\":{{}}}}"
            );
        }
        NocEvent::BusIdle { at, bus } => {
            let _ = write!(
                out,
                "{{\"name\":\"idle\",\"cat\":\"medium\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_TOKENS},\"tid\":{bus},\"args\":{{}}}}"
            );
        }
        NocEvent::FlitCorrupted { at, target, packet, seq, retry } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"corrupt\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"packet\":{packet},\
                 \"seq\":{seq},\"retry\":{retry}}}}}"
            );
        }
        NocEvent::RetransmitScheduled { at, target, packet, seq, resend_at } => {
            let (tk, tid) = target_parts(target);
            let dur = resend_at - at;
            let _ = write!(
                out,
                "{{\"name\":\"retransmit\",\"cat\":\"fault\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"packet\":{packet},\"seq\":{seq}}}}}"
            );
        }
        NocEvent::LinkFailed { at, target, until } => {
            let (tk, tid) = target_parts(target);
            if until == u64::MAX {
                // Permanent fault: an instant, since the span never ends.
                let _ = write!(
                    out,
                    "{{\"name\":\"fail\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                     \"args\":{{\"medium\":\"{tk}\",\"permanent\":true}}}}"
                );
            } else {
                let dur = until - at;
                let _ = write!(
                    out,
                    "{{\"name\":\"outage\",\"cat\":\"fault\",\"ph\":\"X\",\
                     \"ts\":{at},\"dur\":{dur},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                     \"args\":{{\"medium\":\"{tk}\"}}}}"
                );
            }
        }
        NocEvent::LinkRecovered { at, target } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"recover\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\"}}}}"
            );
        }
        NocEvent::FailoverActivated { at, target, up } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"name\":\"failover\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{at},\"pid\":{PID_FAULTS},\"tid\":{tid},\
                 \"args\":{{\"medium\":\"{tk}\",\"up\":{up}}}}}"
            );
        }
    }
}

/// Render events as JSONL: one self-describing JSON object per line, in
/// event order. Suited to `jq`-style post-processing.
pub fn jsonl(events: &[NocEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 80);
    for ev in events {
        jsonl_event(&mut out, ev);
        out.push('\n');
    }
    out
}

fn jsonl_event(out: &mut String, ev: &NocEvent) {
    let kind = ev.kind().name();
    match *ev {
        NocEvent::PacketOffered { at, packet, src, dst, len } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"packet\":{packet},\
                 \"src\":{src},\"dst\":{dst},\"len\":{len}}}"
            );
        }
        NocEvent::PacketInjected { at, packet, src } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"packet\":{packet},\"src\":{src}}}"
            );
        }
        NocEvent::FlitChannel { at, channel, packet, seq, arrives } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"channel\":{channel},\
                 \"packet\":{packet},\"seq\":{seq},\"arrives\":{arrives}}}"
            );
        }
        NocEvent::FlitBus { at, bus, writer, reader, packet, seq, busy_until } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus},\"writer\":{writer},\
                 \"reader\":{reader},\"packet\":{packet},\"seq\":{seq},\
                 \"busy_until\":{busy_until}}}"
            );
        }
        NocEvent::FlitEjected { at, core, packet, seq } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"core\":{core},\
                 \"packet\":{packet},\"seq\":{seq}}}"
            );
        }
        NocEvent::PacketDelivered { at, packet, dst, latency } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"packet\":{packet},\
                 \"dst\":{dst},\"latency\":{latency}}}"
            );
        }
        NocEvent::TokenGranted { at, bus, writer, waited } => {
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus},\
                 \"writer\":{writer},\"waited\":{waited}}}"
            );
        }
        NocEvent::BusBusy { at, bus, until } => {
            let _ =
                write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus},\"until\":{until}}}");
        }
        NocEvent::BusIdle { at, bus } => {
            let _ = write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"bus\":{bus}}}");
        }
        NocEvent::FlitCorrupted { at, target, packet, seq, retry } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                 \"packet\":{packet},\"seq\":{seq},\"retry\":{retry}}}"
            );
        }
        NocEvent::RetransmitScheduled { at, target, packet, seq, resend_at } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                 \"packet\":{packet},\"seq\":{seq},\"resend_at\":{resend_at}}}"
            );
        }
        NocEvent::LinkFailed { at, target, until } => {
            let (tk, tid) = target_parts(target);
            if until == u64::MAX {
                let _ = write!(
                    out,
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                     \"permanent\":true}}"
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\
                     \"until\":{until}}}"
                );
            }
        }
        NocEvent::LinkRecovered { at, target } => {
            let (tk, tid) = target_parts(target);
            let _ =
                write!(out, "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid}}}");
        }
        NocEvent::FailoverActivated { at, target, up } => {
            let (tk, tid) = target_parts(target);
            let _ = write!(
                out,
                "{{\"kind\":\"{kind}\",\"at\":{at},\"medium\":\"{tk}\",\"id\":{tid},\"up\":{up}}}"
            );
        }
    }
}

/// Write a Chrome trace for `events` to `path`.
pub fn write_chrome_trace(path: &Path, events: &[NocEvent]) -> io::Result<()> {
    std::fs::write(path, chrome_trace(events))
}

/// Write JSONL for `events` to `path`.
pub fn write_jsonl(path: &Path, events: &[NocEvent]) -> io::Result<()> {
    std::fs::write(path, jsonl(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<NocEvent> {
        vec![
            NocEvent::PacketOffered { at: 0, packet: 7, src: 1, dst: 2, len: 4 },
            NocEvent::PacketInjected { at: 2, packet: 7, src: 1 },
            NocEvent::FlitChannel { at: 5, channel: 3, packet: 7, seq: 0, arrives: 9 },
            NocEvent::FlitBus {
                at: 6,
                bus: 0,
                writer: 2,
                reader: 0,
                packet: 7,
                seq: 0,
                busy_until: 8,
            },
            NocEvent::TokenGranted { at: 6, bus: 0, writer: 2, waited: 4 },
            NocEvent::BusBusy { at: 6, bus: 0, until: 8 },
            NocEvent::BusIdle { at: 8, bus: 0 },
            NocEvent::FlitEjected { at: 12, core: 2, packet: 7, seq: 3 },
            NocEvent::PacketDelivered { at: 13, packet: 7, dst: 2, latency: 13 },
            NocEvent::LinkFailed { at: 14, target: FaultTarget::Channel(3), until: 40 },
            NocEvent::FlitCorrupted {
                at: 15,
                target: FaultTarget::Channel(3),
                packet: 8,
                seq: 0,
                retry: 1,
            },
            NocEvent::RetransmitScheduled {
                at: 15,
                target: FaultTarget::Channel(3),
                packet: 8,
                seq: 0,
                resend_at: 25,
            },
            NocEvent::FailoverActivated { at: 20, target: FaultTarget::Channel(3), up: false },
            NocEvent::LinkRecovered { at: 40, target: FaultTarget::Channel(3) },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_rows() {
        let s = chrome_trace(&sample_events());
        let v: serde_json::Value = s.parse().expect("chrome trace must parse as JSON");
        let evs = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
        // 5 process metadata records + 14 events.
        assert_eq!(evs.len(), 19);
        let token_wait = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("token-wait"))
            .expect("token-wait span present");
        assert_eq!(
            token_wait.get("ts").and_then(|t| t.as_u64()),
            Some(2),
            "grant at 6 minus wait 4"
        );
        assert_eq!(token_wait.get("dur").and_then(|t| t.as_u64()), Some(4));
        assert!(evs.iter().any(|e| e.get("cat").and_then(|c| c.as_str()) == Some("channel")));
        // The transient outage renders as a 26-cycle span in the fault row.
        let outage = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("outage"))
            .expect("outage span present");
        assert_eq!(outage.get("dur").and_then(|t| t.as_u64()), Some(26));
        assert_eq!(outage.get("pid").and_then(|t| t.as_u64()), Some(PID_FAULTS as u64));
    }

    #[test]
    fn jsonl_lines_parse_and_tag_kind() {
        let s = jsonl(&sample_events());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 14);
        for line in &lines {
            let v: serde_json::Value = line.parse().expect("each JSONL line parses");
            assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
            assert!(v.get("at").and_then(|a| a.as_u64()).is_some());
        }
        assert!(lines[4].contains("\"kind\":\"token_granted\""));
        assert!(lines[10].contains("\"kind\":\"flit_corrupted\""));
        assert!(lines[12].contains("\"kind\":\"failover_activated\""));
    }

    #[test]
    fn permanent_failure_renders_as_instant() {
        let evs = [NocEvent::LinkFailed { at: 5, target: FaultTarget::Bus(2), until: u64::MAX }];
        let s = chrome_trace(&evs);
        let v: serde_json::Value = s.parse().unwrap();
        let fail = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("fail"))
            .expect("permanent failure instant");
        assert_eq!(fail["ph"].as_str(), Some("i"));
        assert_eq!(fail["args"]["permanent"].as_bool(), Some(true));
        let l = jsonl(&evs);
        assert!(l.contains("\"permanent\":true"), "{l}");
        assert!(!l.contains("18446744073709551615"), "no u64::MAX leaking into JSON");
    }

    #[test]
    fn empty_trace_still_valid() {
        let s = chrome_trace(&[]);
        let v: serde_json::Value = s.parse().unwrap();
        assert_eq!(v.get("traceEvents").and_then(|e| e.as_array()).map(|a| a.len()), Some(5));
        assert_eq!(jsonl(&[]), "");
    }
}
