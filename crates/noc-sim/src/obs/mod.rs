//! Observability consumers: recording, exporting, and sampling.
//!
//! The engine (`noc-core`) emits raw [`noc_core::obs::NocEvent`]s; this
//! module turns them into artifacts a human can look at:
//!
//! * [`RingRecorder`] — a bounded ring-buffer [`noc_core::obs::Observer`]
//!   that keeps the newest events and counts what it had to drop.
//! * [`chrome_trace`] / [`jsonl`] — export recorded events as a Chrome
//!   trace (`chrome://tracing`, Perfetto) or as one JSON object per line.
//! * [`SampleSeries`] — periodic time-series sampling of network state
//!   (in-flight flits, queue depths, channel/bus utilization) with
//!   warmup-convergence and saturation-onset detection.
//!
//! A typical traced run:
//!
//! ```no_run
//! use noc_sim::obs::RingRecorder;
//! use noc_sim::{SimConfig, Simulation};
//! use noc_topology::Own256;
//!
//! let mut sim = Simulation::new(&Own256::new(), SimConfig::default());
//! sim.attach_observer(Box::new(RingRecorder::new(1 << 20)));
//! let mut result = sim.run();
//! let rec = RingRecorder::take_from(&mut result.net).unwrap();
//! std::fs::write("trace.json", noc_sim::obs::chrome_trace(&rec.to_vec())).unwrap();
//! ```

pub mod export;
pub mod recorder;
pub mod sampler;

pub use export::{
    chrome_trace, chrome_trace_with_stall, jsonl, jsonl_with_stall, recovery_report_json,
    stall_report_json, write_chrome_trace, write_chrome_trace_with_stall, write_jsonl,
    write_jsonl_with_stall,
};
pub use recorder::RingRecorder;
pub use sampler::{Sample, SampleSeries};
