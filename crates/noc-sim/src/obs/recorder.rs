//! Bounded ring-buffer event recorder.

use std::any::Any;
use std::collections::VecDeque;

use noc_core::obs::{NocEvent, Observer};
use noc_core::Network;

/// An [`Observer`] that keeps the most recent `capacity` events in a ring
/// buffer. When full, the oldest event is evicted and counted in
/// [`RingRecorder::dropped`] — long runs keep the interesting tail instead
/// of an unbounded allocation.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<NocEvent>,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "RingRecorder capacity must be >= 1");
        RingRecorder { capacity, buf: VecDeque::with_capacity(capacity.min(1 << 16)), dropped: 0 }
    }

    /// Detach the observer from `net` and downcast it back to a recorder.
    /// Returns `None` when no observer is attached or it is a different
    /// concrete type (the observer is consumed either way).
    pub fn take_from(net: &mut Network) -> Option<Box<RingRecorder>> {
        net.take_observer()?.into_any().downcast::<RingRecorder>().ok()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room (total seen = `len() + dropped()`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &NocEvent> {
        self.buf.iter()
    }

    /// Copy the retained events out, oldest first.
    pub fn to_vec(&self) -> Vec<NocEvent> {
        self.buf.iter().copied().collect()
    }

    /// Consume the recorder, yielding the retained events oldest first.
    pub fn into_events(self) -> Vec<NocEvent> {
        self.buf.into_iter().collect()
    }
}

impl Observer for RingRecorder {
    fn on_event(&mut self, ev: &NocEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> NocEvent {
        NocEvent::PacketOffered { at, packet: at, src: 0, dst: 1, len: 1 }
    }

    #[test]
    fn wraparound_keeps_newest_events() {
        let mut r = RingRecorder::new(4);
        for i in 0..10 {
            r.on_event(&ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let kept: Vec<u64> = r.iter().map(|e| e.at()).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "newest events survive, oldest first");
        assert_eq!(r.into_events().len(), 4);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut r = RingRecorder::new(8);
        for i in 0..5 {
            r.on_event(&ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_vec().first().unwrap().at(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = RingRecorder::new(0);
    }
}
