//! Process exit codes for `own-experiments`.
//!
//! CI and the sweep supervisor key off these numbers, so they are defined
//! once here and the README table is checked against [`TABLE`] by a test —
//! editing one without the other fails `readme_table_matches`.

/// Success — experiments ran, all gates passed.
pub const OK: i32 = 0;
/// Usage error — diagnosed before any simulation runs.
pub const USAGE: i32 = 2;
/// The watchdog declared a livelock/deadlock.
pub const STALL: i32 = 3;
/// The adaptive reconfiguration controller violated dwell-time hysteresis.
pub const FLAPPING: i32 = 4;
/// A workload ran slower than the benchmark gate allows.
pub const BENCH_REGRESSION: i32 = 5;
/// Deadlock recovery was armed but the fabric stayed wedged.
pub const RECOVERY_EXHAUSTED: i32 = 6;
/// A supervised sweep completed with points that exhausted their retries.
pub const SWEEP_INCOMPLETE: i32 = 7;
/// Another live process holds the run-dir (or service data-dir) lock.
pub const LOCKED: i32 = 8;

/// Every exit code with the exact wording of its README table row.
pub const TABLE: &[(i32, &str)] = &[
    (OK, "success — experiments ran, all gates passed"),
    (
        USAGE,
        "usage error — unknown experiment, bad flag value, unreadable `--spec` \
         (diagnosed before any simulation runs)",
    ),
    (STALL, "stall — the watchdog declared a livelock/deadlock; `StallReport` on stderr"),
    (
        FLAPPING,
        "flapping — the adaptive reconfiguration controller violated its dwell-time \
         hysteresis (`overload-smoke`)",
    ),
    (BENCH_REGRESSION, "bench regression — a workload ran >2× slower than the `--bench-baseline`"),
    (
        RECOVERY_EXHAUSTED,
        "recovery exhausted — deadlock recovery was armed (`--recover`, `chaos`) but the \
         fabric stayed wedged after the attempt budget",
    ),
    (
        SWEEP_INCOMPLETE,
        "sweep incomplete — a supervised `sweep` finished but some points exhausted their \
         retry budget; per-point outcomes are in the run-dir ledger",
    ),
    (
        LOCKED,
        "locked — another live process holds the `supervisor.lock` of this `--run-dir` or \
         service `--data-dir`; rerun after it exits (stale locks of dead processes are \
         taken over automatically)",
    ),
];

/// Render [`TABLE`] as the markdown rows of the README "Exit codes" table.
pub fn readme_rows() -> String {
    let mut out = String::from("| code | meaning |\n|---|---|\n");
    for (code, meaning) in TABLE {
        out.push_str(&format!("| {code} | {meaning} |\n"));
    }
    out
}

/// Validate a thread/worker-count request before any pool is built: zero
/// is always an error, and asking for more than 4× the machine's
/// available parallelism is almost certainly a typo'd oversubscription.
/// `flag` is the CLI flag being validated (`--threads`, `--workers`) so
/// the diagnostic names the flag the user actually typed.
pub fn validate_threads(n: usize, flag: &str) -> Result<(), String> {
    if n == 0 {
        return Err(format!("{flag} must be >= 1 (0 would mean an empty worker pool)"));
    }
    let avail = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let cap = avail.saturating_mul(4);
    if n > cap {
        return Err(format!(
            "{flag} {n} oversubscribes this machine: {avail} hardware threads \
             available (cap {cap} = 4x); pick a value <= {cap}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_nonzero_failures() {
        let mut seen = std::collections::BTreeSet::new();
        for (code, _) in TABLE {
            assert!(seen.insert(*code), "duplicate exit code {code}");
        }
        assert_eq!(TABLE[0].0, OK);
        assert!(TABLE[1..].iter().all(|(c, _)| *c != 0));
        // 1 is reserved: it's what an uncaught panic exits with.
        assert!(TABLE.iter().all(|(c, _)| *c != 1));
    }

    #[test]
    fn readme_table_matches() {
        let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
        // Compare row-by-row after collapsing the doc-string line wraps:
        // README rows are single lines.
        for (code, meaning) in TABLE {
            let row = format!("| {code} | {meaning} |");
            assert!(
                readme.contains(&row),
                "README 'Exit codes' table is missing or differs for code {code};\n\
                 expected row:\n{row}\n\
                 regenerate with `noc_sim::exit::readme_rows()`"
            );
        }
        // And no stale extra rows: every `| N |` row between the section
        // header and the next heading must be one of ours.
        let header = readme.find("### Exit codes").expect("README lost its Exit codes section");
        let rows = readme[header..]
            .lines()
            .skip(1)
            .take_while(|l| !l.starts_with('#'))
            .filter(|l| {
                l.strip_prefix("| ")
                    .and_then(|r| r.split(' ').next())
                    .is_some_and(|tok| tok.parse::<i32>().is_ok())
            })
            .count();
        assert_eq!(rows, TABLE.len(), "README exit-code row count drifted from exit::TABLE");
    }

    #[test]
    fn thread_validation() {
        assert!(validate_threads(0, "--threads").is_err());
        assert!(validate_threads(1, "--threads").is_ok());
        let avail = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        assert!(validate_threads(avail, "--threads").is_ok());
        let err = validate_threads(avail * 4 + 1, "--threads").unwrap_err();
        assert!(err.contains("oversubscribes"), "got: {err}");
        assert!(err.starts_with("--threads "), "got: {err}");
        // The diagnostic names whichever flag the caller is validating.
        let err = validate_threads(0, "--workers").unwrap_err();
        assert!(err.starts_with("--workers "), "got: {err}");
    }
}
