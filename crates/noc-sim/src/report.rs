//! Tabular report formatting for the experiment runners.
//!
//! Every experiment produces a [`Report`]: a titled table of string cells.
//! Keeping results structured (instead of printing directly) lets the test
//! suite assert on the regenerated numbers and lets callers export CSV.

/// A titled table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Report {
    /// Title, e.g. "Table III (ideal scenario)".
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells (each the same length as `header`).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with the given title and columns.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells);
    }

    /// Find the row whose first cell equals `key`.
    pub fn find(&self, key: &str) -> Option<&Vec<String>> {
        self.rows.iter().find(|r| r[0] == key)
    }

    /// Parse cell `(row, col)` as f64 (panics on malformed cells — reports
    /// are produced by our own code). Tolerates a trailing `*` saturation
    /// marker on latency cells.
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col].trim().trim_end_matches('*').parse().unwrap_or_else(|_| {
            panic!(
                "cell ({row},{col}) of '{}' is not numeric: {:?}",
                self.title, self.rows[row][col]
            )
        })
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object (`{title, header, rows}`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parse a report back from [`Report::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Render as CSV (RFC-4180-lite: quotes around cells with commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Demo", &["name", "value"]);
        r.row(vec!["alpha".into(), "1.5".into()]);
        r.row(vec!["beta,x".into(), "2.0".into()]);
        r
    }

    #[test]
    fn text_rendering_aligned() {
        let t = sample().to_text();
        assert!(t.contains("## Demo"));
        assert!(t.contains("alpha"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let c = sample().to_csv();
        assert!(c.contains("\"beta,x\""));
        assert!(c.starts_with("name,value\n"));
    }

    #[test]
    fn find_and_parse() {
        let r = sample();
        assert_eq!(r.find("alpha").unwrap()[1], "1.5");
        assert!(r.find("gamma").is_none());
        assert_eq!(r.cell_f64(0, 1), 1.5);
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let j = r.to_json();
        assert!(j.contains("\"title\""));
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back, r);
        assert!(Report::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut r = Report::new("Bad", &["a", "b"]);
        r.row(vec!["only-one".into()]);
    }
}
