//! Engine benchmark gate: canonical workloads with a pinned perf trajectory.
//!
//! The paper's evaluation is simulation-bound: every additional sweep point
//! (load × pattern × posture × seed) costs one full engine run, so the
//! cycles-per-second of [`noc_core::Network::step`] bounds how much of the
//! design space a session can cover. This module pins that number.
//!
//! [`run_suite`] executes the canonical OWN-256/OWN-1024 workloads — uniform
//! low-load, uniform near-saturation, and hotspot with the overload stack
//! engaged — each for a **fixed cycle budget** with a pinned seed, and
//! reports wall-clock, cycles/sec and (on Linux) peak RSS. The `bench`
//! subcommand of `own-experiments` writes the result as JSON; the repository
//! commits a `BENCH_<pr>.json` baseline and CI re-runs a tiny-budget suite
//! against it, failing on a large regression (see
//! [`compare_to_baseline`]).
//!
//! Workload construction is deterministic (fixed topology, seed, rate), so
//! two runs of the same binary simulate *identical* work; only the wall
//! clock varies. Timing covers stepping only — topology construction is
//! excluded, keeping tiny CI budgets comparable to full local budgets.

use std::time::Instant;

use serde_json::Value;

use noc_core::{RouterConfig, StageProfiler, STAGE_COUNT, STAGE_NAMES};
use noc_topology::{own, Own256Reconfig, ReconfigPolicy, Topology};
use noc_traffic::{BernoulliInjector, TrafficPattern};

/// Schema identifier written into bench JSON files. v1.1 added per-workload
/// `peak_rss_kb` and `stage_shares`; v1.2 adds `threads` (workload names of
/// parallel-engine runs carry an `@t<n>` suffix so baselines compare
/// like-for-like). [`BaselineFile::parse`] accepts any `own-noc-bench/v1*`
/// document, so older baselines keep working.
pub const SCHEMA: &str = "own-noc-bench/v1.2";

/// Default cycle budget for a local bench run.
pub const DEFAULT_CYCLES: u64 = 20_000;

/// Cycle budget of the separate, untimed profiling run that captures
/// `stage_shares` (see [`run_one`] — profiling no longer rides along the
/// timed loop).
const PROFILE_CYCLES: u64 = 2_000;

/// Traffic seed for all bench workloads (same default as `SimConfig`).
const SEED: u64 = 0x0517_2018;

/// Offered load for the "low" workloads: most of the chip idles each cycle.
const LOW_RATE: f64 = 0.005;

/// Offered load for the near-saturation and hotspot workloads.
const SAT_RATE: f64 = 0.04;

/// One canonical workload: how to build it and how to drive it.
struct Workload {
    name: &'static str,
    cores: u32,
    rate: f64,
    pattern: TrafficPattern,
    /// Human-readable pattern/posture label for the JSON.
    label: &'static str,
    /// Overload stack: adaptive spare-band reconfig (OWN-256 only).
    adaptive: bool,
    /// NIC admission-control watermarks.
    throttle: Option<(u32, u32)>,
}

/// The canonical suite: three workloads per scale. The OWN-1024 hotspot
/// runs with admission control but without the adaptive controller (the
/// spare-band reconfig topology exists at 256 cores).
fn suite() -> Vec<Workload> {
    let hotspot = TrafficPattern::Hotspot { target: 0, fraction: 0.2 };
    vec![
        Workload {
            name: "own256-uniform-low",
            cores: 256,
            rate: LOW_RATE,
            pattern: TrafficPattern::Uniform,
            label: "uniform",
            adaptive: false,
            throttle: None,
        },
        Workload {
            name: "own256-uniform-sat",
            cores: 256,
            rate: SAT_RATE,
            pattern: TrafficPattern::Uniform,
            label: "uniform",
            adaptive: false,
            throttle: None,
        },
        Workload {
            name: "own256-hotspot-adaptive",
            cores: 256,
            rate: SAT_RATE,
            pattern: hotspot,
            label: "hotspot+adaptive+throttle",
            adaptive: true,
            throttle: Some((16, 4)),
        },
        Workload {
            name: "own1024-uniform-low",
            cores: 1024,
            rate: LOW_RATE,
            pattern: TrafficPattern::Uniform,
            label: "uniform",
            adaptive: false,
            throttle: None,
        },
        Workload {
            name: "own1024-uniform-sat",
            cores: 1024,
            rate: SAT_RATE,
            pattern: TrafficPattern::Uniform,
            label: "uniform",
            adaptive: false,
            throttle: None,
        },
        Workload {
            name: "own1024-hotspot-throttle",
            cores: 1024,
            rate: SAT_RATE,
            pattern: hotspot,
            label: "hotspot+throttle",
            adaptive: false,
            throttle: Some((16, 4)),
        },
    ]
}

/// Measured outcome of one workload.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    pub name: String,
    pub cores: u32,
    pub rate: f64,
    pub label: String,
    pub cycles: u64,
    /// Total threads the engine stepped with (1 = serial engine).
    pub threads: usize,
    pub wall_ms: f64,
    pub cycles_per_sec: f64,
    /// Flits delivered during the run — a cheap cross-check that two
    /// binaries benchmarked the same work, not just the same wall clock.
    pub flits_ejected: u64,
    /// Process peak RSS (Linux `VmHWM`, kB) sampled right after this
    /// workload. The kernel counter is a high-water mark, so the value is
    /// the max over all workloads run so far — still useful: the first
    /// workload to raise it is the one that owns the peak.
    pub peak_rss_kb: Option<u64>,
    /// Fraction of engine wall time per stage (sums to ~1), from a sparse
    /// stage profiler riding along the timed run.
    pub stage_shares: Option<[f64; STAGE_COUNT]>,
}

/// Build a workload's topology and network.
fn build_net(w: &Workload) -> (Box<dyn Topology>, noc_core::Network) {
    let mut router = RouterConfig::default();
    if let Some((high, low)) = w.throttle {
        router = router.with_throttle(high, low);
    }
    let topo: Box<dyn Topology> = if w.adaptive {
        Box::new(Own256Reconfig::new(ReconfigPolicy::Adaptive { epoch: 256, hysteresis: 1024 }))
    } else {
        own(w.cores)
    };
    let net = topo.build(router);
    (topo, net)
}

/// Run one workload for `cycles` cycles and time the stepping loop.
/// `threads > 1` arms the cluster-sharded parallel engine (bit-identical
/// results, see `noc_core::par`) and suffixes the workload name `@t<n>`.
fn run_one(w: &Workload, cycles: u64, threads: usize) -> BenchOutcome {
    let (topo, mut net) = build_net(w);
    if threads > 1 {
        let map = crate::telemetry::cluster_map_for(&*topo, &net);
        assert!(
            net.set_parallel(threads, &map.cluster_of_router),
            "{}: parallel engine did not arm",
            w.name
        );
    }
    let mut inj = BernoulliInjector::new(w.rate, 4, w.pattern, SEED);
    // The timed loop runs the engine and nothing else. (The stage profiler
    // used to ride along here; its clock reads were a measurable tax on the
    // low-load workloads — own256-uniform-low lost ~2x — so stage shares
    // now come from the separate, untimed run below.)
    let t0 = Instant::now();
    inj.drive(&mut net, cycles);
    let wall = t0.elapsed().as_secs_f64();
    // Untimed profiled re-run on the serial engine for the stage shares
    // (per-stage wall clock is only meaningful single-threaded).
    let (_topo, mut pnet) = build_net(w);
    pnet.set_profiler(StageProfiler::new(16));
    let mut pinj = BernoulliInjector::new(w.rate, 4, w.pattern, SEED);
    pinj.drive(&mut pnet, cycles.min(PROFILE_CYCLES));
    let stage_shares = pnet.take_profiler().map(|p| p.breakdown().shares());
    let name = if threads > 1 { format!("{}@t{threads}", w.name) } else { w.name.to_string() };
    BenchOutcome {
        name,
        cores: w.cores,
        rate: w.rate,
        label: w.label.to_string(),
        cycles,
        threads,
        wall_ms: wall * 1e3,
        cycles_per_sec: if wall > 0.0 { cycles as f64 / wall } else { 0.0 },
        flits_ejected: net.stats.flits_ejected,
        peak_rss_kb: peak_rss_kb(),
        stage_shares,
    }
}

/// Run the canonical suite, `cycles` engine cycles per workload, stepping
/// with `threads` total threads (1 = serial engine). `progress` prints one
/// stderr line per finished workload.
pub fn run_suite(cycles: u64, progress: bool, threads: usize) -> Vec<BenchOutcome> {
    suite()
        .iter()
        .map(|w| {
            let r = run_one(w, cycles, threads);
            if progress {
                eprintln!(
                    "[bench] {}: {:.1} ms, {:.0} kcycles/s",
                    r.name,
                    r.wall_ms,
                    r.cycles_per_sec / 1e3
                );
            }
            r
        })
        .collect()
}

/// Peak resident set size of this process in kB (Linux `VmHWM`), if cheap
/// to obtain on this platform.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Serialize a suite run to the bench JSON format. `baseline` (a previous
/// run's parsed file) adds `before_cycles_per_sec`/`speedup` per workload.
pub fn to_json(results: &[BenchOutcome], baseline: Option<&BaselineFile>) -> String {
    let workloads: Vec<Value> = results
        .iter()
        .map(|r| {
            let mut m = serde_json::Map::new();
            m.insert("name".into(), Value::String(r.name.clone()));
            m.insert("cores".into(), Value::Number(r.cores as f64));
            m.insert("rate".into(), Value::Number(r.rate));
            m.insert("workload".into(), Value::String(r.label.clone()));
            m.insert("cycles".into(), Value::Number(r.cycles as f64));
            m.insert("threads".into(), Value::Number(r.threads as f64));
            m.insert("wall_ms".into(), Value::Number(r.wall_ms));
            m.insert("cycles_per_sec".into(), Value::Number(r.cycles_per_sec));
            m.insert("flits_ejected".into(), Value::Number(r.flits_ejected as f64));
            m.insert(
                "peak_rss_kb".into(),
                r.peak_rss_kb.map_or(Value::Null, |kb| Value::Number(kb as f64)),
            );
            if let Some(shares) = &r.stage_shares {
                let mut sm = serde_json::Map::new();
                for (name, share) in STAGE_NAMES.iter().zip(shares.iter()) {
                    sm.insert((*name).to_string(), Value::Number(*share));
                }
                m.insert("stage_shares".into(), Value::Object(sm));
            }
            if let Some(before) = baseline.and_then(|b| b.cycles_per_sec(&r.name)) {
                m.insert("before_cycles_per_sec".into(), Value::Number(before));
                m.insert("speedup".into(), Value::Number(r.cycles_per_sec / before));
            }
            Value::Object(m)
        })
        .collect();
    let mut doc = serde_json::Map::new();
    doc.insert("schema".into(), Value::String(SCHEMA.into()));
    doc.insert(
        "budget_cycles".into(),
        Value::Number(results.first().map_or(0, |r| r.cycles) as f64),
    );
    doc.insert(
        "peak_rss_kb".into(),
        peak_rss_kb().map_or(Value::Null, |kb| Value::Number(kb as f64)),
    );
    doc.insert("workloads".into(), Value::Array(workloads));
    serde_json::to_string_pretty(&Value::Object(doc)).expect("bench JSON serialization")
}

/// A parsed bench baseline file (e.g. the committed `BENCH_5.json`).
#[derive(Debug)]
pub struct BaselineFile {
    entries: Vec<(String, f64)>,
}

impl BaselineFile {
    /// Parse and schema-check a bench JSON document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let schema = v.get("schema").and_then(|s| s.as_str()).unwrap_or("");
        // Any v1 minor revision parses: v1.1 only added fields.
        if !schema.starts_with("own-noc-bench/v1") {
            return Err(format!("schema {schema:?} is not an own-noc-bench/v1 document"));
        }
        let workloads = v
            .get("workloads")
            .and_then(|w| w.as_array())
            .ok_or("missing workloads array".to_string())?;
        let mut entries = Vec::new();
        for w in workloads {
            let name = w
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("workload without a name".to_string())?;
            let cps = w
                .get("cycles_per_sec")
                .and_then(|c| c.as_f64())
                .ok_or_else(|| format!("workload {name} lacks cycles_per_sec"))?;
            if !(cps.is_finite() && cps > 0.0) {
                return Err(format!("workload {name}: cycles_per_sec {cps} not positive"));
            }
            entries.push((name.to_string(), cps));
        }
        if entries.is_empty() {
            return Err("workloads array is empty".into());
        }
        Ok(BaselineFile { entries })
    }

    /// Baseline cycles/sec for a workload name, if present.
    pub fn cycles_per_sec(&self, name: &str) -> Option<f64> {
        self.entries.iter().find(|(n, _)| n == name).map(|&(_, c)| c)
    }
}

/// Compare a fresh suite run against a committed baseline. Returns the
/// workloads slower than `baseline / max_slowdown` (the regressions) as
/// human-readable lines; an empty vector means the gate passes. Workloads
/// missing from the baseline are ignored (new workloads are not
/// regressions).
pub fn compare_to_baseline(
    results: &[BenchOutcome],
    baseline: &BaselineFile,
    max_slowdown: f64,
) -> Vec<String> {
    assert!(max_slowdown >= 1.0, "max_slowdown is a factor >= 1");
    let mut regressions = Vec::new();
    for r in results {
        let Some(before) = baseline.cycles_per_sec(&r.name) else { continue };
        if r.cycles_per_sec < before / max_slowdown {
            regressions.push(format!(
                "{}: {:.0} cycles/s is {:.2}x slower than baseline {:.0}",
                r.name,
                r.cycles_per_sec,
                before / r.cycles_per_sec,
                before,
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, cps: f64) -> BenchOutcome {
        BenchOutcome {
            name: name.into(),
            cores: 256,
            rate: 0.005,
            label: "uniform".into(),
            cycles: 100,
            threads: 1,
            wall_ms: 1.0,
            cycles_per_sec: cps,
            flits_ejected: 42,
            peak_rss_kb: Some(1024),
            stage_shares: None,
        }
    }

    #[test]
    fn json_roundtrips_through_baseline_parser() {
        let results = vec![outcome("own256-uniform-low", 1e6), outcome("other", 5e5)];
        let text = to_json(&results, None);
        let base = BaselineFile::parse(&text).expect("own output must parse");
        assert_eq!(base.cycles_per_sec("own256-uniform-low"), Some(1e6));
        assert_eq!(base.cycles_per_sec("missing"), None);
    }

    #[test]
    fn baseline_annotations_compute_speedup() {
        let before = to_json(&[outcome("w", 1e6)], None);
        let base = BaselineFile::parse(&before).unwrap();
        let after = to_json(&[outcome("w", 2e6)], Some(&base));
        let v: Value = serde_json::from_str(&after).unwrap();
        let w = &v["workloads"][0];
        assert_eq!(w["before_cycles_per_sec"].as_f64(), Some(1e6));
        assert_eq!(w["speedup"].as_f64(), Some(2.0));
    }

    #[test]
    fn parser_accepts_v1_baselines() {
        // BENCH_5.json and earlier are schema v1 without the per-workload
        // rss/stage fields; they must keep parsing as baselines.
        let v1 = r#"{"schema":"own-noc-bench/v1","workloads":
            [{"name":"w","cycles_per_sec":1000.0}]}"#;
        let base = BaselineFile::parse(v1).expect("v1 must parse");
        assert_eq!(base.cycles_per_sec("w"), Some(1000.0));
    }

    #[test]
    fn suite_outcomes_carry_stage_shares() {
        let r = run_one(&suite()[0], 64, 1);
        let shares = r.stage_shares.expect("profiled side run captured shares");
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0, "shares sum {sum}");
    }

    #[test]
    fn parallel_run_simulates_identical_work() {
        // The flits_ejected cross-check is the bench-level face of the
        // engine's bit-identity contract: same workload, any thread count,
        // same simulation.
        let serial = run_one(&suite()[1], 120, 1);
        let par = run_one(&suite()[1], 120, 2);
        assert_eq!(serial.name, "own256-uniform-sat");
        assert_eq!(par.name, "own256-uniform-sat@t2");
        assert_eq!(par.threads, 2);
        assert_eq!(serial.flits_ejected, par.flits_ejected, "parallel engine changed the work");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(BaselineFile::parse("not json").is_err());
        assert!(BaselineFile::parse(r#"{"schema":"wrong","workloads":[]}"#).is_err());
        let no_cps = format!(r#"{{"schema":"{SCHEMA}","workloads":[{{"name":"x"}}]}}"#);
        assert!(BaselineFile::parse(&no_cps).is_err());
        let empty = format!(r#"{{"schema":"{SCHEMA}","workloads":[]}}"#);
        assert!(BaselineFile::parse(&empty).is_err());
    }

    #[test]
    fn gate_flags_only_real_regressions() {
        let base = BaselineFile::parse(&to_json(&[outcome("w", 1e6)], None)).unwrap();
        // 1.5x slower than baseline: inside the 2x budget.
        assert!(compare_to_baseline(&[outcome("w", 6.6e5)], &base, 2.0).is_empty());
        // 2.5x slower: flagged.
        let regs = compare_to_baseline(&[outcome("w", 4e5)], &base, 2.0);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains('w'), "{regs:?}");
        // Workloads absent from the baseline never regress.
        assert!(compare_to_baseline(&[outcome("new", 1.0)], &base, 2.0).is_empty());
    }

    #[test]
    fn smoke_suite_runs_a_tiny_budget() {
        // One real engine run per workload keeps the gate honest; 60
        // cycles is enough to exercise construction + stepping.
        let results = run_suite(60, false, 1);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert_eq!(r.cycles, 60);
            assert_eq!(r.threads, 1);
            assert!(r.cycles_per_sec > 0.0, "{}: no throughput", r.name);
        }
    }
}
