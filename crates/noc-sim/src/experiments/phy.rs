//! Figures 3 and 4: wireless physical-layer characterization.

use noc_phy::{ClassAbPa, ColpittOscillator, LinkBudget, Lna};

use crate::report::Report;

/// Figure 3: link budget — required TX power (dBm) vs distance for several
/// antenna directivities at 32 Gb/s, 90 GHz.
pub fn fig3() -> Report {
    let lb = LinkBudget::default();
    let dirs = [0.0, 5.0, 10.0];
    let mut r = Report::new(
        "Figure 3 — link budget at 32 Gb/s, 90 GHz",
        &["distance (mm)", "P_tx @ 0 dBi (dBm)", "P_tx @ 5 dBi (dBm)", "P_tx @ 10 dBi (dBm)"],
    );
    for d in [5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0] {
        let mut row = vec![format!("{d:.0}")];
        for g in dirs {
            row.push(format!("{:.1}", lb.required_tx_power_dbm(d, g)));
        }
        r.row(row);
    }
    r
}

/// Figure 4: transceiver circuit blocks — oscillator PSD/phase noise,
/// PA gain and compression, LNA gain.
pub fn fig4() -> Vec<Report> {
    let osc = ColpittOscillator::default();
    let mut a = Report::new("Figure 4a — Colpitt oscillator (90 GHz)", &["quantity", "value"]);
    a.row(vec!["oscillation frequency (GHz)".into(), format!("{:.1}", osc.frequency_hz() / 1e9)]);
    a.row(vec![
        "phase noise @ 1 MHz (dBc/Hz)".into(),
        format!("{:.1}", osc.phase_noise_dbc_hz(1e6)),
    ]);
    a.row(vec![
        "phase noise @ 10 MHz (dBc/Hz)".into(),
        format!("{:.1}", osc.phase_noise_dbc_hz(10e6)),
    ]);
    a.row(vec!["DC power (mW)".into(), format!("{:.1}", osc.dc_power_w * 1e3)]);

    let pa = ClassAbPa::default();
    let mut b = Report::new("Figure 4b — class-AB PA", &["quantity", "value"]);
    b.row(vec!["peak gain (dB)".into(), format!("{:.1}", pa.gain_db(90.0))]);
    b.row(vec!["bandwidth @ 2 dB gain (GHz)".into(), format!("{:.1}", pa.bandwidth_ghz(2.0))]);
    b.row(vec!["P1dB (dBm)".into(), format!("{:.1}", pa.p1db_dbm())]);
    b.row(vec!["saturated output (dBm)".into(), format!("{:.1}", pa.psat_dbm)]);
    b.row(vec!["DC power (mW)".into(), format!("{:.1}", pa.dc_power_w * 1e3)]);

    let lna = Lna::default();
    let mut c = Report::new("Figure 4c — wideband cascode LNA", &["frequency (GHz)", "gain (dB)"]);
    for f in [70.0, 80.0, 90.0, 100.0, 110.0] {
        c.row(vec![format!("{f:.0}"), format!("{:.1}", lna.gain_db(f))]);
    }
    vec![a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_anchor_row() {
        let r = fig3();
        let row50 = r.find("50").unwrap();
        let p: f64 = row50[1].parse().unwrap();
        assert!((3.5..=5.0).contains(&p), "50 mm @ 0 dBi should need ≈4 dBm, got {p}");
        // 10 dBi at both ends: 20 dB less.
        let p10: f64 = row50[3].parse().unwrap();
        assert!((p - p10 - 20.0).abs() < 0.2);
    }

    #[test]
    fn fig4_anchors() {
        let reports = fig4();
        assert_eq!(reports.len(), 3);
        let pn: f64 = reports[0].find("phase noise @ 1 MHz (dBc/Hz)").unwrap()[1].parse().unwrap();
        assert!((-89.0..=-83.0).contains(&pn));
        let p1db: f64 = reports[1].find("P1dB (dBm)").unwrap()[1].parse().unwrap();
        assert!((4.0..=6.0).contains(&p1db));
        let g: f64 = reports[2].find("90").unwrap()[1].parse().unwrap();
        assert_eq!(g, 10.0);
    }
}
