//! Chaos-soak harness: randomized fault injection against the full
//! integrity stack, with invariant audits and checkpoint/resume cuts.
//!
//! One chaos run derives everything from a single seed — fault schedule,
//! silent-corruption rate, link BER, NIC throttle watermarks, spare-band
//! reconfiguration policy, traffic pattern — then soaks an OWN-256 engine
//! for a configured cycle budget while:
//!
//! * running the engine's full invariant sweep (including the packet
//!   conservation law `offered == delivered + dropped + misrouted +
//!   recovered + backlogged + in-flight`) every audit epoch;
//! * letting the progress watchdog fire and the escape path drain stalled
//!   packets (a declared stall with no recoverable packet is the one
//!   terminal failure, reported so the CLI can exit 6);
//! * cutting the run at checkpoint boundaries: the engine is serialized
//!   through the **v3 JSON codec**, decoded into a freshly built network,
//!   and the run continues from the restored state — so every cut also
//!   proves the codec round-trips the integrity state (CRC payloads,
//!   corruption sets, dual RNG streams) bit-exactly.
//!
//! The soak fails loudly (panic → non-zero exit) on any invariant
//! violation, any silently corrupted delivery while the end-to-end CRC is
//! on, or any codec round-trip divergence. A clean run prints a summary.

use noc_core::{
    FaultConfig, FaultEvent, FaultSchedule, FaultTarget, LinkClass, Network, RecoveryReport,
    RouterConfig, StallReport, Watchdog, DEFAULT_WATCHDOG_INTERVAL,
};
use noc_topology::{Own256Reconfig, ReconfigPolicy, Topology};
use noc_traffic::{BernoulliInjector, TrafficPattern};

use crate::checkpoint::Checkpoint;

/// Chaos-run parameters from the CLI.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOpts {
    /// Seed deriving the whole fuzz plan (and the traffic stream).
    pub seed: u64,
    /// Total engine cycles to soak.
    pub cycles: u64,
    /// Mid-run checkpoint/resume cuts (the run is split into `cuts + 1`
    /// segments; state crosses each boundary through the JSON codec).
    pub cuts: u32,
    /// Invariant-audit interval in cycles.
    pub audit_every: u64,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts { seed: 1, cycles: 100_000, cuts: 3, audit_every: 1024 }
    }
}

/// What one chaos soak did, for the summary line and CI artifacts.
pub struct ChaosOutcome {
    /// Human description of the derived fuzz plan.
    pub plan: String,
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Checkpoint/resume cuts survived.
    pub cuts: u32,
    /// Watchdog-triggered escape drains performed.
    pub recoveries: Vec<RecoveryReport>,
    /// Set when the watchdog fired and the escape path could not free
    /// anything — the run is dead and the CLI should exit 6.
    pub exhausted: Option<Box<StallReport>>,
    /// Final packet-conservation accounting (balanced or the run would
    /// have panicked).
    pub accounting: noc_core::Accounting,
    /// End-to-end CRC detections (corrupted flits caught at the sink and
    /// retransmitted).
    pub crc_detected: u64,
    /// Corrupted payloads delivered to a sink — MUST be zero with the CRC
    /// on; asserted before this struct is built.
    pub corrupted_delivered: u64,
}

/// Deterministic fuzz RNG: splitmix64, independent of the engine streams.
struct FuzzRng(u64);

impl FuzzRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// The seed-derived plan for one soak.
struct Plan {
    policy: ReconfigPolicy,
    router: RouterConfig,
    pattern: TrafficPattern,
    rate: f64,
    fault: FaultConfig,
    description: String,
}

/// Derive the whole fuzz plan from the seed. Needs a throwaway network to
/// resolve wireless channel and bus ids for the fault schedule.
fn derive_plan(opts: &ChaosOpts) -> Plan {
    let mut rng = FuzzRng(opts.seed);
    let probe = Own256Reconfig::new(ReconfigPolicy::None).build(RouterConfig::default());

    let policy = match rng.below(3) {
        0 => ReconfigPolicy::None,
        1 => ReconfigPolicy::Diagonal,
        _ => {
            let epoch = 128 << rng.below(3); // 128 | 256 | 512
            ReconfigPolicy::Adaptive { epoch, hysteresis: epoch * 4 }
        }
    };

    let mut router = RouterConfig::default();
    let throttle = rng.chance(0.5).then(|| {
        let high = 8 + rng.below(24) as u32;
        let low = 1 + rng.below(u64::from(high) / 2) as u32;
        router = router.with_throttle(high, low);
        (high, low)
    });

    let pattern = if rng.chance(0.5) {
        TrafficPattern::Uniform
    } else {
        TrafficPattern::Hotspot { target: 0, fraction: 0.2 }
    };
    let rate = 0.02 + rng.unit() * 0.03;

    // Silent corruption: off a quarter of the time, else log-uniform in
    // [1e-6, 1e-4] per flit-hop.
    let corruption_rate = if rng.chance(0.25) { 0.0 } else { 10f64.powf(-6.0 + 2.0 * rng.unit()) };
    // Detected corruption (NACK/retransmit path): uniform wireless BER,
    // off half the time.
    let ber = if rng.chance(0.5) { 0.0 } else { 10f64.powf(-7.0 + 2.0 * rng.unit()) };
    let channel_ber: Vec<f64> = probe
        .channels()
        .iter()
        .map(|c| if matches!(c.class, LinkClass::Wireless { .. }) { ber } else { 0.0 })
        .collect();

    // Fault schedule: up to four events. Wireless channels may die
    // permanently (failover territory); shared media and token rings only
    // suffer transients so one unlucky draw cannot starve a cluster for
    // the whole soak.
    let wireless: Vec<u32> = probe
        .channels()
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.class, LinkClass::Wireless { .. }))
        .map(|(i, _)| i as u32)
        .collect();
    let n_buses = probe.buses().len() as u64;
    let mut schedule = FaultSchedule::new();
    let n_events = rng.below(5);
    let mut described = Vec::new();
    for _ in 0..n_events {
        let at = opts.cycles / 10 + rng.below(opts.cycles / 2);
        let dur = 500 + rng.below(4_500);
        match rng.below(4) {
            0 => {
                let ch = wireless[rng.below(wireless.len() as u64) as usize];
                schedule.push(FaultEvent::permanent(at, FaultTarget::Channel(ch)));
                described.push(format!("ch:{ch}@{at}"));
            }
            1 => {
                let ch = wireless[rng.below(wireless.len() as u64) as usize];
                schedule.push(FaultEvent::transient(at, FaultTarget::Channel(ch), dur));
                described.push(format!("ch:{ch}@{at}+{dur}"));
            }
            2 => {
                let bus = rng.below(n_buses) as u32;
                schedule.push(FaultEvent::transient(at, FaultTarget::Bus(bus), dur));
                described.push(format!("bus:{bus}@{at}+{dur}"));
            }
            _ => {
                let bus = rng.below(n_buses) as u32;
                schedule.push(FaultEvent::transient(at, FaultTarget::TokenRing(bus), dur));
                described.push(format!("token:{bus}@{at}+{dur}"));
            }
        }
    }

    let description = format!(
        "policy={policy:?} throttle={throttle:?} pattern={} rate={rate:.3} \
         ber={ber:.1e} corruption={corruption_rate:.1e} faults=[{}]",
        match pattern {
            TrafficPattern::Uniform => "uniform",
            _ => "hotspot",
        },
        described.join(", "),
    );

    Plan {
        policy,
        router,
        pattern,
        rate,
        fault: FaultConfig {
            schedule,
            channel_ber,
            corruption_rate,
            e2e_crc: true,
            ..Default::default()
        },
        description,
    }
}

/// Build a fresh network for the plan, faults attached and audits armed.
fn build(plan: &Plan, topo: &Own256Reconfig, audit_every: u64) -> Network {
    let mut net = topo.build(plan.router);
    net.attach_faults(plan.fault.clone());
    net.set_audit_interval(audit_every);
    net
}

/// Packets drained per watchdog-triggered escape.
const RECOVERY_BUDGET: usize = 8;

/// Run one chaos soak. Panics on invariant violations, silent corrupted
/// deliveries, or codec round-trip divergence; an unrecoverable stall is
/// returned in [`ChaosOutcome::exhausted`] instead (exit-code territory,
/// not a bug in the engine — the fuzzed scenario genuinely wedged it).
pub fn chaos(opts: &ChaosOpts) -> ChaosOutcome {
    let plan = derive_plan(opts);
    let topo = Own256Reconfig::new(plan.policy.clone());
    let mut net = build(&plan, &topo, opts.audit_every);
    let cores = net.num_cores() as u32;
    let mut injector = BernoulliInjector::new(plan.rate, 4, plan.pattern, opts.seed);

    let mut dog = Watchdog::new(DEFAULT_WATCHDOG_INTERVAL, net.now, net.progress_counter());
    let mut recoveries: Vec<RecoveryReport> = Vec::new();
    let mut exhausted: Option<Box<StallReport>> = None;
    let mut cuts_done = 0u32;

    let segments = u64::from(opts.cuts) + 1;
    let seg_len = (opts.cycles / segments).max(1);
    'soak: for seg in 0..segments {
        let until = if seg + 1 == segments { opts.cycles } else { (seg + 1) * seg_len };
        while net.now < until {
            injector.offer(&mut net);
            net.step();
            if dog.due(net.now) && dog.poll(net.now, net.progress_counter()) && !net.quiescent() {
                let report = net.stall_report(dog.progressed_at(), false);
                let rec = net.recover(&report, RECOVERY_BUDGET);
                if rec.is_empty() {
                    exhausted = Some(report);
                    break 'soak;
                }
                recoveries.push(*rec);
                dog.reset(net.now, net.progress_counter());
            }
        }
        if seg + 1 == segments {
            break;
        }
        // --- checkpoint/resume cut -------------------------------------
        net.check_invariants();
        let acct = net.accounting();
        assert!(acct.balanced(), "conservation broken at cut {seg}: {acct}");
        let ckpt = Checkpoint {
            topology: topo.name(),
            seed: opts.seed,
            cycle: net.now,
            injector_offers: injector.offers(),
            ejected_window_start: None,
            ejected_window_end: None,
            snapshot: net.snapshot(),
        };
        let text = ckpt.to_json();
        let decoded = Checkpoint::from_json(&text)
            .unwrap_or_else(|e| panic!("cut {seg}: checkpoint does not re-parse: {e}"));
        assert_eq!(
            decoded.to_json(),
            text,
            "cut {seg}: checkpoint JSON does not round-trip bit-exactly"
        );
        let mut fresh = build(&plan, &topo, opts.audit_every);
        fresh
            .restore(&decoded.snapshot)
            .unwrap_or_else(|e| panic!("cut {seg}: restore failed: {e}"));
        let mut fresh_injector = BernoulliInjector::new(plan.rate, 4, plan.pattern, opts.seed);
        fresh_injector.skip_cycles(decoded.injector_offers, cores);
        net = fresh;
        injector = fresh_injector;
        dog.reset(net.now, net.progress_counter());
        cuts_done += 1;
    }

    net.check_invariants();
    let accounting = net.accounting();
    assert!(accounting.balanced(), "conservation broken at end of soak: {accounting}");
    assert_eq!(
        net.stats.corrupted_delivered, 0,
        "silently corrupted payload delivered with the end-to-end CRC on"
    );
    ChaosOutcome {
        plan: plan.description,
        cycles: net.now,
        cuts: cuts_done,
        crc_detected: net.stats.corrupted_detected,
        corrupted_delivered: net.stats.corrupted_delivered,
        recoveries,
        exhausted,
        accounting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_survives_cuts_and_stays_balanced() {
        let opts = ChaosOpts { seed: 7, cycles: 12_000, cuts: 2, audit_every: 512 };
        let out = chaos(&opts);
        assert_eq!(out.cycles, 12_000);
        assert_eq!(out.cuts, 2);
        assert!(out.exhausted.is_none(), "seed 7 must not wedge: {}", out.plan);
        assert_eq!(out.corrupted_delivered, 0);
        assert!(out.accounting.balanced());
    }

    #[test]
    fn plan_is_seed_deterministic() {
        let opts = ChaosOpts { seed: 42, ..Default::default() };
        assert_eq!(derive_plan(&opts).description, derive_plan(&opts).description);
        let other = ChaosOpts { seed: 43, ..Default::default() };
        assert_ne!(derive_plan(&opts).description, derive_plan(&other).description);
    }

    #[test]
    fn corruption_heavy_seed_detects_and_delivers_clean() {
        // Force a corruption-heavy plan by scanning a few seeds for one
        // with a nonzero corruption rate, then soak it.
        let seed = (1..64)
            .find(|&s| {
                derive_plan(&ChaosOpts { seed: s, ..Default::default() }).fault.corruption_rate
                    > 1e-5
            })
            .expect("some seed under 64 draws a high corruption rate");
        let out = chaos(&ChaosOpts { seed, cycles: 20_000, cuts: 1, audit_every: 1024 });
        assert_eq!(out.corrupted_delivered, 0);
        assert!(out.crc_detected > 0, "20k cycles at >1e-5/hop must catch flips: {}", out.plan);
    }
}
