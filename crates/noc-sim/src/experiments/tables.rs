//! Tables I–IV: static architecture and technology tables.

use noc_core::DistanceClass;
use noc_power::{band_plan, Scenario, WinocConfig};
use noc_topology::channels::ChannelAllocation;

use crate::report::Report;

/// Table I: wireless connections in the OWN architecture.
pub fn table1() -> Report {
    let mut r = Report::new(
        "Table I — OWN wireless connections (C2C / E2E / SR)",
        &["channel", "class", "distance (mm)", "LD factor", "TX", "RX"],
    );
    let alloc = ChannelAllocation::table_i();
    for l in &alloc.links {
        r.row(vec![
            l.channel.to_string(),
            format!("{:?}", l.distance),
            format!("{:.0}", l.distance.distance_mm()),
            format!("{:.2}", l.distance.ld_factor()),
            format!("{:?}{}", l.tx, l.src),
            format!("{:?}{}", l.rx, l.dst),
        ]);
    }
    r
}

/// Table II: OWN-1024 wireless channels with group 0 as the source, plus
/// the intra-group channels.
pub fn table2() -> Report {
    let mut r = Report::new(
        "Table II — OWN-1024 channels (group 0 as source)",
        &["channel", "kind", "writers", "readers", "class"],
    );
    let alloc = ChannelAllocation::table_i();
    for l in alloc.links.iter().filter(|l| l.src == 0) {
        r.row(vec![
            l.channel.to_string(),
            format!("inter-group 0->{}", l.dst),
            format!("{:?} of clusters 0-3, group 0", l.tx),
            format!("{:?} of clusters 0-3, group {}", l.rx, l.dst),
            format!("{:?}", l.distance),
        ]);
    }
    for l in ChannelAllocation::intra_group_links().iter().filter(|l| l.src == 0) {
        r.row(vec![
            l.channel.to_string(),
            "intra-group 0".to_string(),
            "D of clusters 0-3, group 0".to_string(),
            "D of clusters 0-3, group 0".to_string(),
            format!("{:?}", l.distance),
        ]);
    }
    r
}

/// Table III: the 16-band plan under one scenario.
pub fn table3(scenario: Scenario) -> Report {
    let mut r = Report::new(
        format!("Table III — wireless band plan, {} scenario", scenario.name()),
        &["link", "centre (GHz)", "BW (GHz)", "technology", "pJ/bit", "role"],
    );
    for b in band_plan(scenario) {
        let role = match b.index {
            1..=4 => "inter-cluster C2C",
            5..=8 => "inter-cluster E2E",
            9..=12 => "inter-cluster SR",
            _ => "reconfig (256) / intra-group (1024)",
        };
        r.row(vec![
            b.index.to_string(),
            format!("{:.0}", b.center_ghz),
            format!("{:.0}", b.bandwidth_ghz),
            b.tech.name().to_string(),
            format!("{:.2}", b.energy_pj_per_bit),
            role.to_string(),
        ]);
    }
    r
}

/// Table IV: the four wireless implementation configurations.
pub fn table4() -> Report {
    let mut r = Report::new(
        "Table IV — WiNoC implementation configurations",
        &["configuration", "C2C (long)", "E2E (medium)", "SR (short)"],
    );
    for c in WinocConfig::all() {
        r.row(vec![
            c.name(),
            c.tech_for(DistanceClass::C2C).name().to_string(),
            c.tech_for(DistanceClass::E2E).name().to_string(),
            c.tech_for(DistanceClass::SR).name().to_string(),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_12_channels() {
        let t = table1();
        assert_eq!(t.rows.len(), 12);
        assert_eq!(t.find("1").unwrap()[1], "C2C");
        assert_eq!(t.find("9").unwrap()[1], "SR");
    }

    #[test]
    fn table2_lists_group0_channels() {
        let t = table2();
        // 3 inter-group (0->1, 0->2, 0->3) + 1 intra-group.
        assert_eq!(t.rows.len(), 4);
        assert!(t.rows.iter().any(|r| r[1] == "intra-group 0"));
    }

    #[test]
    fn table3_band1_is_cmos_base() {
        let t = table3(Scenario::Ideal);
        assert_eq!(t.rows.len(), 16);
        let b1 = t.find("1").unwrap();
        assert_eq!(b1[3], "CMOS");
        assert_eq!(b1[4], "0.10");
    }

    #[test]
    fn table4_matches_paper() {
        let t = table4();
        assert_eq!(t.rows.len(), 4);
        let c1 = t.find("Configuration 1").unwrap();
        assert_eq!(&c1[1..], &["SiGe", "CMOS", "CMOS"]);
        let c4 = t.find("Configuration 4").unwrap();
        assert_eq!(&c4[1..], &["CMOS", "CMOS", "BiCMOS"]);
    }
}
