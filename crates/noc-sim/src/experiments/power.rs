//! Figures 5, 6 and 8b: power experiments.

use noc_power::{NetworkPower, PowerModel, Scenario, WinocConfig, WirelessModel};
use noc_topology::{own, paper_suite, Topology};
use noc_traffic::TrafficPattern;

use crate::experiments::Budget;
use crate::report::Report;
use crate::sim::{SimConfig, Simulation};

/// Moderate uniform load used by the power experiments (below the OWN
/// saturation point of ≈0.06 flits/core/cycle at the normalized bisection).
pub const POWER_LOAD: f64 = 0.03;

fn run_uniform(topo: &dyn Topology, budget: Budget, rate: f64) -> crate::metrics::SimResult {
    let cfg = SimConfig {
        rate,
        pattern: TrafficPattern::Uniform,
        warmup: budget.warmup,
        measure: budget.measure,
        drain: budget.drain,
        ..Default::default()
    };
    Simulation::new(topo, cfg).run()
}

/// The wireless pricing model appropriate for a topology: OWN gets the
/// Table IV configuration with LD scaling; baselines get the band-plan
/// pricing without distance optimization.
pub fn model_for(topo_name: &str, scenario: Scenario, config: WinocConfig) -> PowerModel {
    if topo_name.starts_with("OWN") {
        PowerModel::new(WirelessModel::own(scenario, config))
    } else {
        PowerModel::new(WirelessModel::baseline(scenario))
    }
}

/// Figure 5: average wireless link power of OWN-256 for configurations 1–4
/// under both scenarios, random traffic.
///
/// The cycle-level activity is identical across configurations (the
/// configuration changes transceiver technology, not connectivity), so one
/// simulation per core count is priced eight ways — exactly the paper's
/// methodology of replaying the measured packet counts against Table III.
pub fn fig5(budget: Budget) -> Report {
    let topo = own(256);
    let result = run_uniform(topo.as_ref(), budget, POWER_LOAD);
    let mut r = Report::new(
        "Figure 5 — average wireless link power, OWN-256, random traffic (W)",
        &["configuration", "scenario 1 (32 GHz)", "scenario 2 (16 GHz)"],
    );
    for cfg in WinocConfig::all() {
        let mut row = vec![cfg.name()];
        for scenario in [Scenario::Ideal, Scenario::Conservative] {
            let model = PowerModel::new(WirelessModel::own(scenario, cfg));
            let p = model.price(&result.net, result.cycles);
            row.push(format!("{:.4}", p.wireless_w));
        }
        r.row(row);
    }
    r
}

/// Price one topology's uniform-traffic run (used by fig6/fig8b).
fn breakdown(
    topo: &dyn Topology,
    budget: Budget,
    scenario: Scenario,
    config: WinocConfig,
    rate: f64,
) -> (String, NetworkPower) {
    let result = run_uniform(topo, budget, rate);
    let model = model_for(&result.name, scenario, config);
    let p = model.price(&result.net, result.cycles);
    (result.name, p)
}

/// Figure 6: power breakdown per topology at 256 cores (OWN shown for all
/// four configurations), uniform random traffic.
pub fn fig6(budget: Budget) -> Report {
    let mut r = Report::new(
        "Figure 6 — power breakdown, 256 cores, uniform random (W)",
        &["architecture", "electrical", "photonic", "wireless", "router", "total"],
    );
    let scenario = Scenario::Ideal;
    // Baselines.
    for topo in paper_suite(256) {
        if topo.name().starts_with("OWN") {
            continue;
        }
        let (name, p) =
            breakdown(topo.as_ref(), budget, scenario, WinocConfig::Config4, POWER_LOAD);
        r.row(power_row(name, p));
    }
    // OWN under each configuration: one simulation, four pricings.
    let topo = own(256);
    let result = run_uniform(topo.as_ref(), budget, POWER_LOAD);
    for cfg in WinocConfig::all() {
        let model = PowerModel::new(WirelessModel::own(scenario, cfg));
        let p = model.price(&result.net, result.cycles);
        r.row(power_row(format!("OWN-256 (cfg {})", cfg.number()), p));
    }
    r
}

/// Figure 8b: average power per packet at 1024 cores, uniform traffic.
pub fn fig8b(budget: Budget) -> Report {
    let mut r = Report::new(
        "Figure 8b — average energy per packet, 1024 cores, uniform random (nJ)",
        &["architecture", "nJ/packet", "total W", "wireless W", "router W"],
    );
    for topo in paper_suite(1024) {
        let (name, p) =
            breakdown(topo.as_ref(), budget, Scenario::Ideal, WinocConfig::Config4, POWER_LOAD);
        r.row(vec![
            name,
            format!("{:.2}", p.nj_per_packet()),
            format!("{:.3}", p.total_w()),
            format!("{:.3}", p.wireless_w),
            format!("{:.3}", p.router_dynamic_w + p.router_static_w),
        ]);
    }
    r
}

fn power_row(name: String, p: NetworkPower) -> Vec<String> {
    vec![
        name,
        format!("{:.3}", p.electrical_w),
        format!("{:.3}", p.photonic_w),
        format!("{:.3}", p.wireless_w),
        format!("{:.3}", p.router_dynamic_w + p.router_static_w),
        format!("{:.3}", p.total_w()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_config_ordering_matches_paper() {
        // §V-B: configs 1 and 3 (SiGe on long range) consume significantly
        // more; config 4 is cheapest under scenario 1.
        let r = fig5(Budget::quick());
        let w = |cfg: &str, col: usize| -> f64 { r.find(cfg).unwrap()[col].parse().unwrap() };
        for col in [1, 2] {
            assert!(w("Configuration 1", col) > w("Configuration 2", col));
            assert!(w("Configuration 1", col) > w("Configuration 4", col));
            assert!(w("Configuration 3", col) > w("Configuration 4", col));
        }
        // Scenario-1 savings: config 2 cuts ~half, config 4 cuts more
        // (paper: 60% and 80%).
        let c1 = w("Configuration 1", 1);
        let c2 = w("Configuration 2", 1);
        let c4 = w("Configuration 4", 1);
        assert!(c2 < 0.7 * c1, "config 2 saves at least 30%: {c2} vs {c1}");
        assert!(c4 < c2, "config 4 beats config 2");
    }

    #[test]
    fn fig6_shape_matches_paper() {
        let r = fig6(Budget::quick());
        let total = |name: &str| -> f64 { r.find(name).unwrap()[5].parse().unwrap() };
        // OptXB consumes the least; CMESH the most; OWN cfg4 in between,
        // with CMESH at least ~25% above OWN cfg4.
        let optxb = total("OptXB-256");
        let cmesh = total("CMESH-256");
        let own4 = total("OWN-256 (cfg 4)");
        let own1 = total("OWN-256 (cfg 1)");
        assert!(optxb < own4, "OptXB least power: {optxb} vs {own4}");
        assert!(cmesh > 1.2 * own4, "CMESH ≥20% above OWN-cfg4: {cmesh} vs {own4}");
        assert!(own1 > own4, "SiGe-heavy config costs more");
        assert!(cmesh > optxb * 1.5, "CMESH most power");
    }
}
