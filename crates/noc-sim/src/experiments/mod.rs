//! Experiment runners: one function per table and figure of the paper.
//!
//! | paper artifact | runner | content |
//! |---|---|---|
//! | Table I   | [`tables::table1`] | wireless connection classes and channel pairs |
//! | Table II  | [`tables::table2`] | 1024-core intra/inter-group channel map |
//! | Table III | [`tables::table3`] | 16-band plan × {ideal, conservative} with pJ/bit |
//! | Table IV  | [`tables::table4`] | configurations 1–4 |
//! | Fig. 3    | [`phy::fig3`]      | required TX power vs distance and directivity |
//! | Fig. 4    | [`phy::fig4`]      | oscillator PSD/phase noise, PA gain/P1dB, LNA gain |
//! | Fig. 5    | [`power::fig5`]    | avg wireless link power, configs × scenarios |
//! | Fig. 6    | [`power::fig6`]    | total power breakdown per topology, 256 cores |
//! | Fig. 7a   | [`perf::fig7a`]    | throughput per pattern per topology, 256 cores |
//! | Fig. 7b/c | [`perf::fig7bc`]   | latency vs load (UN, BR), 256 cores |
//! | Fig. 8a   | [`perf::fig8a`]    | throughput per pattern, 1024 cores |
//! | Fig. 8b   | [`power::fig8b`]   | power per packet per topology, 1024 cores |
//!
//! Beyond the paper's artifacts, [`extensions`] quantifies its qualitative
//! claims (area/ring counts, photonic loss, SDM interference) and its
//! declared future work (reconfiguration bands, bursty traffic), and
//! [`resilience`] exercises the fault model: scheduled link/bus/token
//! failures, link-budget-derived bit error rates, and runtime spare-band
//! failover. [`chaos`] soak-tests the whole stack: a seed-derived fuzz of
//! faults, corruption, throttling, and reconfiguration, audited every epoch
//! and cut by checkpoint/resume round trips.
//!
//! Every runner takes a [`Budget`] so the same code serves quick CI checks
//! and full regeneration runs.

pub mod chaos;
pub mod extensions;
pub mod overload;
pub mod perf;
pub mod phy;
pub mod power;
pub mod resilience;
pub mod tables;

use crate::sim::SimConfig;

/// Cycle budget for simulation-backed experiments.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Drain budget.
    pub drain: u64,
    /// State-sampling interval in cycles (0 = off); see
    /// [`SimConfig::sample_every`].
    pub sample_every: u64,
}

impl Budget {
    /// Fast budget for tests and smoke runs (minutes for the full set).
    pub fn quick() -> Self {
        Budget { warmup: 500, measure: 2_000, drain: 6_000, sample_every: 0 }
    }

    /// Full budget for report-quality numbers.
    pub fn full() -> Self {
        Budget { warmup: 5_000, measure: 20_000, drain: 60_000, sample_every: 0 }
    }

    /// Lift into a [`SimConfig`] at the given load and pattern defaults.
    pub fn config(&self) -> SimConfig {
        SimConfig {
            warmup: self.warmup,
            measure: self.measure,
            drain: self.drain,
            sample_every: self.sample_every,
            ..Default::default()
        }
    }
}
