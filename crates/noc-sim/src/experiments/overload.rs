//! Overload experiments: graceful degradation under hotspot pressure.
//!
//! Closes the loop between the three overload-protection mechanisms:
//!
//! * **congestion sensing** — per-channel utilization EWMAs maintained by
//!   `noc_core::LinkSensors` whenever the routing algorithm asks for them;
//! * **NIC admission control** — `noc_core::ThrottlePolicy` watermarks
//!   shedding offers at overloaded sources (counted, never silent);
//! * **spare-band reconfiguration** — `noc_topology`'s
//!   [`ReconfigPolicy::Adaptive`] controller steering the dark spare
//!   wireless bands 13–16 onto the hottest cluster pairs each epoch.
//!
//! The experiment drives OWN-256 with hotspot traffic (a fraction of all
//! packets target one core, the rest uniform) across a load sweep and
//! compares three postures: no protection, statically reinforced spares
//! (`Diagonal`), and the adaptive controller with admission control. The
//! expected degradation curve is `adaptive >= static >= none` in delivered
//! throughput once the hotspot saturates.

use noc_core::obs::{EventKind, NocEvent};
use noc_core::RouterConfig;
use noc_topology::{Own256Reconfig, ReconfigPolicy};
use noc_traffic::TrafficPattern;

use crate::experiments::Budget;
use crate::metrics::SimResult;
use crate::obs::RingRecorder;
use crate::report::Report;
use crate::sim::{SimConfig, Simulation};

/// The hot destination: a tile of cluster 0, so the three ordered cluster
/// pairs into cluster 0 carry the hotspot and the adaptive controller has
/// real ranking work to do.
pub const HOT_CORE: u32 = 0;

/// Fraction of offered packets addressed to [`HOT_CORE`].
pub const HOT_FRACTION: f64 = 0.2;

/// User overrides for the overload runs, from the CLI.
#[derive(Debug, Clone, Copy)]
pub struct OverloadOpts {
    /// NIC admission watermarks `(high, low)`; `None` disables throttling
    /// even for the protected postures.
    pub throttle: Option<(u32, u32)>,
    /// Adaptive controller `(epoch, hysteresis)` in cycles.
    pub reconfig: (u64, u64),
}

impl Default for OverloadOpts {
    fn default() -> Self {
        OverloadOpts { throttle: Some((16, 4)), reconfig: (256, 1024) }
    }
}

/// Build and run one OWN-256 hotspot simulation under `policy`.
fn run(
    policy: ReconfigPolicy,
    throttle: Option<(u32, u32)>,
    rate: f64,
    budget: Budget,
) -> SimResult {
    let mut router = RouterConfig::default();
    if let Some((high, low)) = throttle {
        router = router.with_throttle(high, low);
    }
    let cfg = SimConfig {
        rate,
        pattern: TrafficPattern::Hotspot { target: HOT_CORE, fraction: HOT_FRACTION },
        warmup: budget.warmup,
        measure: budget.measure,
        drain: budget.drain,
        router,
        sample_every: budget.sample_every,
        ..Default::default()
    };
    Simulation::new(&Own256Reconfig::new(policy), cfg).run()
}

/// Spare-band reassignments performed by the run's routing algorithm: the
/// adaptive controller's cumulative counter, 0 for policies without one.
fn steer_count(r: &SimResult) -> u64 {
    let words = r.net.snapshot().routing;
    // The adaptive controller appends slot state + a reassignment counter
    // (last word) to the base failed-primary flags.
    if words.len() > 16 {
        *words.last().expect("nonempty")
    } else {
        0
    }
}

const COLUMNS: &[&str] = &[
    "policy",
    "rate",
    "avg latency",
    "throughput",
    "delivered",
    "shed",
    "deferred",
    "steers",
    "stalled",
];

/// One protection posture: display label, reconfig policy, NIC watermarks.
type Posture = (&'static str, ReconfigPolicy, Option<(u32, u32)>);

/// The three protection postures compared by the sweep, in ascending order
/// of machinery: nothing, statically reinforced diagonals, and the
/// adaptive controller plus admission control.
fn postures(opts: &OverloadOpts) -> [Posture; 3] {
    let (epoch, hysteresis) = opts.reconfig;
    [
        ("none", ReconfigPolicy::None, None),
        ("static", ReconfigPolicy::Diagonal, opts.throttle),
        ("adaptive", ReconfigPolicy::Adaptive { epoch, hysteresis }, opts.throttle),
    ]
}

/// The overload experiment: hotspot load sweep × protection posture.
pub fn overload(budget: Budget, opts: &OverloadOpts) -> Report {
    let (epoch, hysteresis) = opts.reconfig;
    let throttle = opts.throttle.map_or("off".to_string(), |(high, low)| format!("{high}:{low}"));
    let mut r = Report::new(
        format!(
            "Extension — overload: hotspot {HOT_FRACTION} on core {HOT_CORE}, OWN-256, \
             adaptive {epoch}:{hysteresis}, throttle {throttle}"
        ),
        COLUMNS,
    );
    for &rate in &[0.005, 0.02, 0.04] {
        for (label, policy, throttle) in postures(opts) {
            let res = run(policy, throttle, rate, budget);
            r.row(vec![
                label.to_string(),
                format!("{rate}"),
                format!("{:.1}", res.avg_latency),
                format!("{:.4}", res.throughput),
                format!("{:.4}", res.delivered_fraction),
                format!("{}", res.offers_shed),
                format!("{}", res.offers_deferred),
                format!("{}", steer_count(&res)),
                if res.stall.is_some() { "YES".into() } else { "-".into() },
            ]);
        }
    }
    r
}

/// Hysteresis violations in a steering event stream: a spare band steered
/// *onto* a pair (active, non-protect) less than `hysteresis` cycles after
/// its previous bandwidth assignment. The controller's dwell rule makes
/// this structurally impossible, so any hit is a regression ("flapping").
/// Protect steers are exempt: fault protection may preempt a bandwidth
/// slot at any time by design.
pub fn flap_violations(events: &[NocEvent], hysteresis: u64) -> Vec<String> {
    let mut last_assign: [Option<u64>; 4] = [None; 4];
    let mut violations = Vec::new();
    for ev in events {
        let NocEvent::SpareSteered { at, band, active, protect, .. } = *ev else { continue };
        let slot = usize::from(band.saturating_sub(13)).min(3);
        if !active {
            continue;
        }
        if protect {
            // Protection may preempt freely; it still occupies the slot.
            last_assign[slot] = Some(at);
            continue;
        }
        if let Some(prev) = last_assign[slot] {
            if at - prev < hysteresis {
                violations.push(format!(
                    "band {band} re-steered at cycle {at}, only {} cycles after {prev} \
                     (hysteresis {hysteresis})",
                    at - prev
                ));
            }
        }
        last_assign[slot] = Some(at);
    }
    violations
}

/// One short, fully-observed adaptive hotspot run for CI smoke checks.
/// Returns the run result, the recorded steering events, and any
/// hysteresis violations (see [`flap_violations`]).
pub fn smoke(budget: Budget, opts: &OverloadOpts) -> (SimResult, Vec<NocEvent>, Vec<String>) {
    let (epoch, hysteresis) = opts.reconfig;
    let mut router = RouterConfig::default();
    if let Some((high, low)) = opts.throttle {
        router = router.with_throttle(high, low);
    }
    let cfg = SimConfig {
        rate: 0.04,
        pattern: TrafficPattern::Hotspot { target: HOT_CORE, fraction: HOT_FRACTION },
        warmup: budget.warmup,
        measure: budget.measure,
        drain: budget.drain,
        router,
        ..Default::default()
    };
    let topo = Own256Reconfig::new(ReconfigPolicy::Adaptive { epoch, hysteresis });
    let mut sim = Simulation::new(&topo, cfg);
    sim.attach_observer(Box::new(RingRecorder::new(1 << 18)));
    let mut result = sim.run();
    let events: Vec<NocEvent> = RingRecorder::take_from(&mut result.net)
        .map(|rec| rec.into_events())
        .unwrap_or_default()
        .into_iter()
        .filter(|e| e.kind() == EventKind::SpareSteered)
        .collect();
    let violations = flap_violations(&events, hysteresis);
    (result, events, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Budget {
        Budget { warmup: 400, measure: 1_600, drain: 4_000, sample_every: 0 }
    }

    #[test]
    fn report_covers_the_sweep_without_stalls() {
        let r = overload(quick(), &OverloadOpts::default());
        assert_eq!(r.rows.len(), 9, "3 loads x 3 postures");
        for row in &r.rows {
            assert_eq!(row[8], "-", "no posture may stall: {row:?}");
        }
        // Below saturation everything is delivered and nothing is shed.
        let low = &r.rows[0];
        assert_eq!(low[0], "none");
        assert_eq!(low[5], "0", "no shedding at low load: {low:?}");
    }

    #[test]
    fn adaptive_with_throttle_beats_none_at_saturation() {
        // The acceptance bar: at a load that saturates the hotspot, the
        // full protection stack sustains strictly higher delivered
        // throughput than no protection, with zero stalls and every
        // turned-away offer counted.
        let budget = quick();
        let opts = OverloadOpts::default();
        let none = run(ReconfigPolicy::None, None, 0.04, budget);
        let (epoch, hysteresis) = opts.reconfig;
        let adaptive =
            run(ReconfigPolicy::Adaptive { epoch, hysteresis }, opts.throttle, 0.04, budget);
        assert!(none.stall.is_none() && adaptive.stall.is_none(), "zero watchdog stalls");
        assert!(
            adaptive.throughput > none.throughput,
            "adaptive+throttle {} must beat none {}",
            adaptive.throughput,
            none.throughput
        );
        assert!(adaptive.offers_shed > 0, "admission control must engage at saturation");
        assert!(steer_count(&adaptive) > 0, "the controller must steer at least one spare");
        // Non-silent drops: every offer is admitted, shed, or deferred —
        // admitted ones are delivered or still in flight, never vanished.
        let s = &adaptive.net.stats;
        assert_eq!(s.packets_dropped_corrupt, 0, "no fault model attached");
        assert!(
            s.packets_delivered <= s.packets_offered,
            "delivered {} cannot exceed admitted {}",
            s.packets_delivered,
            s.packets_offered
        );
    }

    #[test]
    fn flap_detector_flags_fast_resteers_and_passes_dwell() {
        let steer = |at, band, active, protect| NocEvent::SpareSteered {
            at,
            band,
            channel: 0,
            active,
            protect,
        };
        // Legitimate: assigned at 100, released and re-steered at 1200.
        let ok = [
            steer(100, 13, true, false),
            steer(1200, 13, false, false),
            steer(1200, 13, true, false),
        ];
        assert!(flap_violations(&ok, 1000).is_empty());
        // Flap: re-steered 300 cycles after assignment with hysteresis 1000.
        let bad = [steer(100, 13, true, false), steer(400, 13, true, false)];
        assert_eq!(flap_violations(&bad, 1000).len(), 1);
        // Protect preemption is exempt even when immediate.
        let protect = [steer(100, 13, true, false), steer(150, 13, true, true)];
        assert!(flap_violations(&protect, 1000).is_empty());
        // Distinct bands never interfere.
        let distinct = [steer(100, 13, true, false), steer(200, 14, true, false)];
        assert!(flap_violations(&distinct, 1000).is_empty());
    }

    #[test]
    fn smoke_run_is_clean() {
        let budget = Budget { warmup: 300, measure: 1_200, drain: 3_000, sample_every: 0 };
        let (result, events, violations) = smoke(budget, &OverloadOpts::default());
        assert!(result.stall.is_none(), "smoke run must not stall");
        assert!(!events.is_empty(), "the controller must emit steering events");
        assert!(violations.is_empty(), "no flapping: {violations:?}");
    }
}
