//! Resilience experiments: scheduled faults, link error processes, and
//! runtime spare-band failover on OWN-256.
//!
//! The fault model lives in `noc_core::fault` (poison-and-flush retransmit
//! protocol, frozen token rings, detection-delayed routing notices); the
//! per-distance-class bit error rates come from the `noc-phy` link budget
//! (OOK envelope-detection curve), and the failover reaction is
//! `noc_topology`'s [`ReconfigPolicy::Protect`] — traffic switches onto
//! spare bands 13–16 once the primary's failure is detected.
//!
//! Fault schedules can be written by hand in a compact spec syntax (see
//! [`parse_fault_spec`]):
//!
//! ```text
//! band:3@5000            permanently kill wireless band 3 at cycle 5000
//! band:3@5000+2000       … for 2000 cycles only (transient)
//! ch:17@100, bus:0@9000  channel/bus by raw id, comma-separated
//! token:2@400+100        freeze bus 2's token ring for 100 cycles
//! ```

use noc_core::{
    DistanceClass, FaultConfig, FaultEvent, FaultSchedule, FaultTarget, LinkClass, Network,
};
use noc_phy::{LinkBudget, LinkCoding, SecdedCode};
use noc_topology::{Own256Reconfig, ReconfigPolicy};
use noc_traffic::TrafficPattern;

use crate::experiments::Budget;
use crate::metrics::SimResult;
use crate::report::Report;
use crate::sim::Simulation;

/// Antenna directivity assumed for the derived BERs, dBi per end.
const ANTENNA_DBI: f64 = 0.0;
/// TX power margin over the worst-case (60 mm) requirement, dB. Two dB of
/// headroom puts the diagonal links at a realistic ~1e-5 BER and the short
/// links effectively error-free.
const TX_MARGIN_DB: f64 = 2.0;

/// User overrides for the resilience runs, from the CLI.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOpts {
    /// Fault schedule spec (see [`parse_fault_spec`]); `None` = the
    /// built-in kill-the-diagonal scenario.
    pub faults: Option<String>,
    /// Uniform wireless BER override; `None` = derive per distance class
    /// from the `noc-phy` link budget.
    pub ber: Option<f64>,
    /// Retry budget override per link-level transfer.
    pub retry_limit: Option<u8>,
    /// Per-band SECDED selection (see [`CodingSelect`]); bands it covers
    /// replace their raw BER with the Hamming(72,64) post-FEC rate.
    pub coding: CodingSelect,
    /// Silent corruption rate per flit-hop (bit flips that pass the link
    /// undetected; caught by the end-to-end CRC at the sink).
    pub corruption_rate: f64,
}

/// Which wireless bands run SECDED-coded, for coded-vs-uncoded shootouts.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum CodingSelect {
    /// All links uncoded — the paper's baseline.
    #[default]
    Off,
    /// Every wireless band coded.
    All,
    /// Only the listed Table III band numbers coded.
    Bands(Vec<u8>),
}

impl CodingSelect {
    /// The coding applied to the given wireless band.
    pub fn for_band(&self, band: u8) -> LinkCoding {
        let coded = match self {
            CodingSelect::Off => false,
            CodingSelect::All => true,
            CodingSelect::Bands(bands) => bands.contains(&band),
        };
        if coded {
            LinkCoding::Secded(SecdedCode::hamming_72_64())
        } else {
            LinkCoding::Uncoded
        }
    }

    /// Parse a `--coding` CLI value: `off`, `secded`, or
    /// `secded:<band>,<band>,…` (Table III numbering).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "off" | "none" => Ok(CodingSelect::Off),
            "secded" | "all" => Ok(CodingSelect::All),
            other => {
                let bands_s = other
                    .strip_prefix("secded:")
                    .ok_or_else(|| format!("bad coding spec {other:?} (off|secded|secded:3,4)"))?;
                let bands = bands_s
                    .split(',')
                    .map(|b| b.trim().parse::<u8>().map_err(|_| format!("bad band number {b:?}")))
                    .collect::<Result<Vec<u8>, String>>()?;
                if bands.is_empty() {
                    return Err("empty band list in coding spec".to_string());
                }
                Ok(CodingSelect::Bands(bands))
            }
        }
    }
}

/// Resolve a Table III wireless band to its channel id in `net`.
fn band_channel(net: &Network, band: u8) -> Result<u32, String> {
    net.channels()
        .iter()
        .position(|c| matches!(c.class, LinkClass::Wireless { channel, .. } if channel == band))
        .map(|i| i as u32)
        .ok_or_else(|| format!("no wireless band {band} in this topology"))
}

/// Parse a comma-separated fault-schedule spec against a built network.
///
/// Each element is `<target>@<cycle>` (permanent) or
/// `<target>@<cycle>+<duration>` (transient), with `<target>` one of
/// `band:<n>` (wireless band, Table III numbering), `ch:<id>` (raw channel
/// id), `bus:<id>` (shared medium), or `token:<id>` (freeze that bus's
/// token ring without killing the medium).
pub fn parse_fault_spec(spec: &str, net: &Network) -> Result<FaultSchedule, String> {
    let mut sched = FaultSchedule::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (target_s, when) = part.split_once('@').ok_or_else(|| {
            format!("missing '@' in {part:?} (expected <target>@<cycle>[+<dur>])")
        })?;
        let (kind, id_s) = target_s
            .split_once(':')
            .ok_or_else(|| format!("bad target {target_s:?} (expected band:/ch:/bus:/token:)"))?;
        let id: u32 =
            id_s.trim().parse().map_err(|_| format!("bad target id in {part:?}: {id_s:?}"))?;
        let target = match kind.trim() {
            "band" => {
                let band =
                    u8::try_from(id).map_err(|_| format!("band out of range in {part:?}"))?;
                FaultTarget::Channel(band_channel(net, band)?)
            }
            "ch" => {
                if id as usize >= net.channels().len() {
                    return Err(format!("channel {id} out of range in {part:?}"));
                }
                FaultTarget::Channel(id)
            }
            "bus" => {
                if id as usize >= net.buses().len() {
                    return Err(format!("bus {id} out of range in {part:?}"));
                }
                FaultTarget::Bus(id)
            }
            "token" => {
                if id as usize >= net.buses().len() {
                    return Err(format!("bus {id} out of range in {part:?}"));
                }
                FaultTarget::TokenRing(id)
            }
            other => return Err(format!("unknown target kind {other:?} in {part:?}")),
        };
        let (at_s, dur_s) = match when.split_once('+') {
            Some((a, d)) => (a, Some(d)),
            None => (when, None),
        };
        let at: u64 = at_s.trim().parse().map_err(|_| format!("bad cycle in {part:?}"))?;
        match dur_s {
            None => {
                sched.push(FaultEvent::permanent(at, target));
            }
            Some(d) => {
                let dur: u64 = d.trim().parse().map_err(|_| format!("bad duration in {part:?}"))?;
                if dur == 0 {
                    return Err(format!("zero duration in {part:?}"));
                }
                sched.push(FaultEvent::transient(at, target, dur));
            }
        }
    }
    if sched.is_empty() {
        return Err("empty fault spec".to_string());
    }
    Ok(sched)
}

/// Check a `--faults` spec against the OWN-256 reconfig topology without
/// running anything, so the CLI can reject a typo up front instead of
/// panicking mid-run.
pub fn validate_fault_spec(spec: &str) -> Result<(), String> {
    use noc_core::RouterConfig;
    use noc_topology::Topology;
    let net = Own256Reconfig::new(ReconfigPolicy::None).build(RouterConfig::default());
    parse_fault_spec(spec, &net).map(|_| ())
}

/// Per-channel BERs: wireless links get the link-budget-derived (or
/// overridden) rate, put through the band's FEC when one is selected;
/// wired links are assumed clean.
fn channel_bers_coded(net: &Network, ber_override: Option<f64>, coding: &CodingSelect) -> Vec<f64> {
    let lb = LinkBudget::default();
    let class_ber = |d: DistanceClass| {
        ber_override.unwrap_or_else(|| lb.ber_for_class(d, ANTENNA_DBI, TX_MARGIN_DB))
    };
    net.channels()
        .iter()
        .map(|c| match c.class {
            LinkClass::Wireless { distance, channel } => {
                coding.for_band(channel).effective_ber(class_ber(distance))
            }
            _ => 0.0,
        })
        .collect()
}

/// Build, optionally fault, and run one OWN-256 resilience simulation.
fn run(
    policy: ReconfigPolicy,
    budget: Budget,
    opts: &ResilienceOpts,
    with_ber: bool,
    schedule: Option<&dyn Fn(&Network) -> FaultSchedule>,
) -> SimResult {
    let mut cfg = budget.config();
    cfg.rate = 0.04;
    cfg.pattern = TrafficPattern::Uniform;
    let mut sim = Simulation::new(&Own256Reconfig::new(policy), cfg);
    if with_ber || schedule.is_some() || opts.corruption_rate > 0.0 {
        let net = sim.network();
        let fault = FaultConfig {
            schedule: schedule.map(|f| f(net)).unwrap_or_default(),
            channel_ber: if with_ber {
                channel_bers_coded(net, opts.ber, &opts.coding)
            } else {
                Vec::new()
            },
            retry_limit: opts.retry_limit.unwrap_or(FaultConfig::default().retry_limit),
            corruption_rate: opts.corruption_rate,
            ..Default::default()
        };
        sim.attach_faults(fault);
    }
    sim.run()
}

fn result_row(scenario: &str, r: &SimResult) -> Vec<String> {
    vec![
        scenario.to_string(),
        format!("{:.1}", r.avg_latency),
        format!("{:.4}", r.throughput),
        format!("{:.4}", r.delivered_fraction),
        format!("{}", r.flit_retransmits),
        format!("{}", r.packets_dropped_corrupt),
        format!("{}", r.failovers),
        r.time_to_failover.map_or("-".to_string(), |t| t.to_string()),
    ]
}

const COLUMNS: &[&str] = &[
    "scenario",
    "avg latency",
    "throughput",
    "delivered",
    "retransmits",
    "dropped",
    "failovers",
    "detect (cyc)",
];

/// The resilience experiment: OWN-256 under link errors and a mid-run
/// diagonal-band failure, with and without spare-band protection.
pub fn resilience(budget: Budget, opts: &ResilienceOpts) -> Report {
    let mut r = Report::new(
        "Extension — resilience: link errors and C2C band failure, OWN-256 uniform 0.04",
        COLUMNS,
    );
    // The fault fires a quarter into the measurement window.
    let fault_at = budget.warmup + budget.measure / 4;
    let protect = ReconfigPolicy::Protect(vec![(0, 2)]);

    let default_sched = move |net: &Network| {
        let primary = band_channel(net, 3).expect("OWN-256 has band 3");
        FaultSchedule::new().with(FaultEvent::permanent(fault_at, FaultTarget::Channel(primary)))
    };
    let transient_sched = move |net: &Network| {
        let primary = band_channel(net, 3).expect("OWN-256 has band 3");
        FaultSchedule::new().with(FaultEvent::transient(
            fault_at,
            FaultTarget::Channel(primary),
            budget.measure / 4,
        ))
    };
    let custom = opts.faults.clone();
    let custom_sched = custom.as_deref().map(|s| {
        move |net: &Network| parse_fault_spec(s, net).unwrap_or_else(|e| panic!("--faults: {e}"))
    });

    r.row(result_row("no faults", &run(protect.clone(), budget, opts, false, None)));
    r.row(result_row("link BER only", &run(protect.clone(), budget, opts, true, None)));
    match &custom_sched {
        None => {
            r.row(result_row(
                "transient C2C outage + failover",
                &run(protect.clone(), budget, opts, true, Some(&transient_sched)),
            ));
            r.row(result_row(
                "permanent C2C failure + failover",
                &run(protect, budget, opts, true, Some(&default_sched)),
            ));
            r.row(result_row(
                "permanent C2C failure, no spare",
                &run(ReconfigPolicy::None, budget, opts, true, Some(&default_sched)),
            ));
        }
        Some(sched) => {
            r.row(result_row(
                "scheduled faults + failover",
                &run(protect, budget, opts, true, Some(sched)),
            ));
            r.row(result_row(
                "scheduled faults, no spare",
                &run(ReconfigPolicy::None, budget, opts, true, Some(sched)),
            ));
        }
    }
    r
}

/// Sweep fault count and wireless BER against delivery metrics. All four
/// spare bands protect the four C2C/E2E primaries that the sweep kills.
pub fn resilience_sweep(budget: Budget, opts: &ResilienceOpts) -> Report {
    let mut r = Report::new(
        "Extension — resilience sweep: faults x BER, OWN-256 uniform 0.04 (protected)",
        &[
            "faults",
            "wireless BER",
            "avg latency",
            "post-fault latency",
            "throughput",
            "delivered",
            "dropped",
            "failovers",
            "detect (cyc)",
        ],
    );
    // Protected pairs and their primary bands, killed in order.
    let pairs = [(0u32, 2u32), (2, 0), (1, 3)];
    let bands = [3u8, 4, 2];
    let fault_at = budget.warmup + budget.measure / 4;
    for n_faults in 0..=pairs.len() {
        for &ber in &[0.0, 1e-5, 1e-4] {
            let sched = move |net: &Network| {
                let mut s = FaultSchedule::new();
                for &band in &bands[..n_faults] {
                    let ch = band_channel(net, band).expect("primary band");
                    // Stagger kills 200 cycles apart to spread detection.
                    s.push(FaultEvent::permanent(
                        fault_at + 200 * (band as u64 % 4),
                        FaultTarget::Channel(ch),
                    ));
                }
                s
            };
            let sweep_opts = ResilienceOpts { ber: Some(ber), ..opts.clone() };
            let res = run(
                ReconfigPolicy::Protect(pairs.to_vec()),
                budget,
                &sweep_opts,
                ber > 0.0,
                (n_faults > 0).then_some(&sched as &dyn Fn(&Network) -> FaultSchedule),
            );
            r.row(vec![
                format!("{n_faults}"),
                format!("{ber:.0e}"),
                format!("{:.1}", res.avg_latency),
                format!("{:.1}", res.avg_post_fault_latency),
                format!("{:.4}", res.throughput),
                format!("{:.4}", res.delivered_fraction),
                format!("{}", res.packets_dropped_corrupt),
                format!("{}", res.failovers),
                res.time_to_failover.map_or("-".to_string(), |t| t.to_string()),
            ]);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::RouterConfig;
    use noc_topology::Topology;

    fn own256() -> Network {
        Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)])).build(RouterConfig::default())
    }

    #[test]
    fn validate_matches_parse() {
        assert!(validate_fault_spec("band:3@5000+2000, bus:0@100").is_ok());
        assert!(validate_fault_spec("band:99@1").is_err());
        assert!(validate_fault_spec("").is_err());
    }

    #[test]
    fn spec_parses_bands_channels_buses_tokens() {
        let net = own256();
        let s = parse_fault_spec("band:3@5000, ch:0@100+50, bus:0@9000, token:1@400+100", &net)
            .unwrap();
        assert_eq!(s.len(), 4);
        let evs = s.events();
        assert_eq!(evs[0].at, 5000);
        assert!(matches!(evs[0].target, FaultTarget::Channel(_)));
        assert_eq!(evs[1].duration, Some(50));
        assert!(matches!(evs[2].target, FaultTarget::Bus(0)));
        assert!(matches!(evs[3].target, FaultTarget::TokenRing(1)));
    }

    #[test]
    fn spec_rejects_malformed_input() {
        let net = own256();
        for bad in [
            "",
            "band:3",
            "3@100",
            "band:99@100",
            "ch:100000@5",
            "bus:999@5",
            "gizmo:1@5",
            "band:3@x",
            "band:3@5+0",
            "band:3@5+y",
        ] {
            assert!(parse_fault_spec(bad, &net).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn derived_bers_follow_distance_classes() {
        let net = own256();
        let bers = channel_bers_coded(&net, None, &CodingSelect::Off);
        let lb = LinkBudget::default();
        let mut seen_wireless = 0;
        for (ch, &ber) in net.channels().iter().zip(&bers) {
            match ch.class {
                LinkClass::Wireless { distance, .. } => {
                    seen_wireless += 1;
                    assert_eq!(ber, lb.ber_for_class(distance, ANTENNA_DBI, TX_MARGIN_DB));
                    assert!(ber > 0.0 && ber < 1e-3, "physically plausible BER, got {ber:e}");
                }
                _ => assert_eq!(ber, 0.0, "wired links are clean"),
            }
        }
        assert!(seen_wireless >= 13, "12 primaries + the spare");
        let overridden = channel_bers_coded(&net, Some(1e-7), &CodingSelect::Off);
        assert!(overridden.iter().all(|&b| b == 0.0 || b == 1e-7));
    }

    #[test]
    fn coding_select_parses() {
        assert_eq!(CodingSelect::parse("off").unwrap(), CodingSelect::Off);
        assert_eq!(CodingSelect::parse("none").unwrap(), CodingSelect::Off);
        assert_eq!(CodingSelect::parse("secded").unwrap(), CodingSelect::All);
        assert_eq!(CodingSelect::parse("all").unwrap(), CodingSelect::All);
        assert_eq!(CodingSelect::parse("secded:3,4").unwrap(), CodingSelect::Bands(vec![3, 4]));
        assert!(CodingSelect::parse("hamming").is_err());
        assert!(CodingSelect::parse("secded:x").is_err());
        assert!(CodingSelect::parse("secded:").is_err());
        assert_eq!(CodingSelect::default(), CodingSelect::Off);
    }

    #[test]
    fn coded_bands_get_post_fec_ber() {
        let net = own256();
        let raw = channel_bers_coded(&net, Some(1e-5), &CodingSelect::Off);
        let all = channel_bers_coded(&net, Some(1e-5), &CodingSelect::All);
        let some = channel_bers_coded(&net, Some(1e-5), &CodingSelect::Bands(vec![3]));
        let expect = SecdedCode::hamming_72_64().post_fec_ber(1e-5);
        for (i, ch) in net.channels().iter().enumerate() {
            match ch.class {
                LinkClass::Wireless { channel, .. } => {
                    assert_eq!(raw[i], 1e-5);
                    assert_eq!(all[i], expect, "band {channel} coded under All");
                    assert!(all[i] < raw[i] / 100.0, "coding buys >2 decades");
                    if channel == 3 {
                        assert_eq!(some[i], expect, "band 3 coded under Bands([3])");
                    } else {
                        assert_eq!(some[i], 1e-5, "band {channel} stays raw");
                    }
                }
                _ => assert_eq!(all[i], 0.0),
            }
        }
    }

    #[test]
    fn resilience_report_shows_failover_and_degradation() {
        let budget = Budget { warmup: 300, measure: 1_600, drain: 8_000, sample_every: 0 };
        let r = resilience(budget, &ResilienceOpts::default());
        assert_eq!(r.rows.len(), 5);
        // Clean run delivers everything.
        assert_eq!(r.cell_f64(0, 3), 1.0, "no-fault delivered fraction");
        let protected = r.find("permanent C2C failure + failover").expect("row");
        assert_eq!(protected[6], "1", "exactly one failover: {protected:?}");
        assert_ne!(protected[7], "-", "detection latency recorded");
        // Unprotected loses strictly more than protected.
        let p_dropped: u64 = protected[5].parse().unwrap();
        let u_dropped: u64 =
            r.find("permanent C2C failure, no spare").expect("row")[5].parse().unwrap();
        assert!(u_dropped > p_dropped, "no-spare run must drop more: {u_dropped} vs {p_dropped}");
    }

    #[test]
    fn custom_fault_spec_drives_the_report() {
        let budget = Budget { warmup: 200, measure: 800, drain: 4_000, sample_every: 0 };
        let opts = ResilienceOpts {
            faults: Some("band:3@400".to_string()),
            ber: Some(0.0),
            retry_limit: Some(2),
            ..Default::default()
        };
        let r = resilience(budget, &opts);
        assert_eq!(r.rows.len(), 4);
        assert!(r.find("scheduled faults + failover").is_some());
    }

    #[test]
    fn sweep_degrades_monotonically_in_faults_at_zero_ber() {
        let budget = Budget { warmup: 200, measure: 1_000, drain: 5_000, sample_every: 0 };
        let r = resilience_sweep(budget, &ResilienceOpts::default());
        assert_eq!(r.rows.len(), 12, "4 fault counts x 3 BERs");
        // Zero-fault zero-BER row is clean.
        assert_eq!(r.cell_f64(0, 5), 1.0);
        assert_eq!(r.rows[0][7], "0");
        // Every faulted protected run still failed over.
        for row in r.rows.iter().filter(|row| row[0] != "0") {
            let faults: u64 = row[0].parse().unwrap();
            let failovers: u64 = row[7].parse().unwrap();
            assert_eq!(failovers, faults, "each killed band fails over once: {row:?}");
        }
    }
}
