//! Extension experiments beyond the paper's figures.
//!
//! These quantify claims the paper makes qualitatively, and exercise its
//! declared future work:
//!
//! * [`area`] — DSENT-style silicon area + ring counts per architecture
//!   (the "more than a million ring resonators" integration argument).
//! * [`loss`] — photonic insertion-loss/laser budgets, OWN vs OptXB
//!   ("insertion losses tend to increase with a long snake-like
//!   waveguide").
//! * [`sdm`] — SIR validation of the §V-B frequency-reuse pairs
//!   ("care must be taken … to limit interference").
//! * [`reconfig`] — the Table III reconfiguration bands 13–16 deployed
//!   ("could adaptively be utilized to improve performance").
//! * [`bursty`] — Markov-modulated bursty traffic at equal mean load
//!   (toward "evaluate with real workloads").

use noc_core::RouterConfig;
use noc_phy::{validate_own_reuse, Floorplan, LinkBudget};
use noc_power::{
    AreaModel, DsentRouter, LossModel, PowerModel, Scenario, TechNode, ThermalModel, WinocConfig,
    WirelessModel,
};
use noc_topology::{
    own, paper_suite, AntennaPlacement, Own256, Own256Reconfig, ReconfigPolicy, Topology,
};
use noc_traffic::{Trace, TraceInjector, TrafficPattern};

use crate::experiments::power::POWER_LOAD;
use crate::experiments::Budget;
use crate::report::Report;
use crate::sim::{SimConfig, Simulation};

/// Silicon area comparison across the suite.
pub fn area(cores: u32) -> Report {
    let mut r = Report::new(
        format!("Extension — silicon area, {cores} cores (mm²)"),
        &[
            "architecture",
            "buffers",
            "crossbars",
            "transceivers",
            "rings (count)",
            "rings mm²",
            "total",
        ],
    );
    let model = AreaModel::default();
    for topo in paper_suite(cores) {
        let net = topo.build(RouterConfig::default());
        let a = model.of(&net, 4, 4);
        r.row(vec![
            topo.name(),
            format!("{:.2}", a.buffers_mm2),
            format!("{:.1}", a.crossbars_mm2),
            format!("{:.1}", a.transceivers_mm2),
            format!("{}", a.rings),
            format!("{:.1}", a.rings_mm2),
            format!("{:.1}", a.total_mm2()),
        ]);
    }
    r
}

/// Photonic loss/laser budgets: OWN cluster waveguide vs OptXB snakes.
pub fn loss() -> Report {
    let m = LossModel::default();
    let mut r = Report::new(
        "Extension — photonic insertion-loss budget",
        &["waveguide", "loss (dB)", "laser (dBm/λ)", "wall-plug (W)", "physically closes?"],
    );
    for (name, b) in [
        ("OWN cluster home waveguide", m.own_cluster_waveguide()),
        ("OptXB-256 home waveguide", m.optxb_waveguide_256()),
        ("OptXB-1024 home waveguide", m.optxb_waveguide_1024()),
    ] {
        // Above ~30 dBm/λ no integrable laser exists: the link cannot be
        // built as a single waveguide — the paper's scalability objection.
        let closes = b.laser_dbm_per_lambda < 30.0;
        r.row(vec![
            name.to_string(),
            format!("{:.1}", b.loss_db),
            format!("{:.1}", b.laser_dbm_per_lambda),
            format!("{:.2e}", b.wallplug_w),
            if closes { "yes" } else { "no" }.to_string(),
        ]);
    }
    r
}

/// SIR of every §V-B frequency-reuse pair on the Fig. 1 floorplan.
pub fn sdm() -> Report {
    let fp = Floorplan::default();
    let lb = LinkBudget::default();
    let mut r = Report::new(
        "Extension — SDM frequency-reuse SIR (10 dB antenna front-back ratio)",
        &["reuse pair", "worst SIR (dB)", "feasible"],
    );
    for ((a, b), report) in validate_own_reuse(&fp, &lb) {
        r.row(vec![
            format!(
                "{}{}→{}{} / {}{}→{}{}",
                a.tx_antenna,
                a.tx_cluster,
                a.rx_antenna,
                a.rx_cluster,
                b.tx_antenna,
                b.tx_cluster,
                b.rx_antenna,
                b.rx_cluster
            ),
            format!("{:.1}", report.worst_db()),
            if report.feasible() { "yes" } else { "no" }.to_string(),
        ]);
    }
    r
}

/// Reconfiguration bands in service under pure cluster-diagonal traffic
/// (every core sends to its diagonal-quadrant mirror, `dst = src XOR 128`),
/// the workload where the four C2C channels are provably the bottleneck:
/// their aggregate capacity is 4 flits/cycle without spares and 8 with.
pub fn reconfig(budget: Budget) -> Report {
    let mut r = Report::new(
        "Extension — reconfiguration channels (bands 13-16), cluster-diagonal traffic",
        &["policy", "accepted throughput (flits/core/cycle)", "avg latency (cycles)"],
    );
    let rate = 0.05; // well above the 4-channel diagonal capacity of ~0.016
    for policy in [
        ReconfigPolicy::None,
        ReconfigPolicy::Diagonal,
        ReconfigPolicy::Pairs(vec![(3, 1), (1, 3), (0, 2), (2, 0)]),
    ] {
        let topo = Own256Reconfig::new(policy.clone());
        let mut net = topo.build(noc_core::RouterConfig::default());
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let p = (rate / 2.0 * u32::MAX as f64) as u64; // 2-flit packets
        let total = budget.warmup + budget.measure;
        net.stats.measure_from = budget.warmup;
        net.stats.measure_until = total;
        let mut ejected_at_start = 0;
        for cycle in 0..total {
            if cycle == budget.warmup {
                ejected_at_start = net.stats.flits_ejected;
            }
            for src in 0..256u32 {
                if next() & 0xFFFF_FFFF < p {
                    net.inject_packet(src, src ^ 128, 2);
                }
            }
            net.step();
        }
        let accepted =
            (net.stats.flits_ejected - ejected_at_start) as f64 / (budget.measure as f64 * 256.0);
        let lat_snapshot = net.stats.latency.mean();
        r.row(vec![topo.name(), format!("{accepted:.4}"), format!("{lat_snapshot:.1}")]);
    }
    r
}

/// Ring-trimming power under an on-die temperature spread (§I's thermal
/// argument in watts): ring counts come from each architecture's built
/// network; the thermal model holds every ring on-channel against a
/// uniform 0..spread temperature error.
pub fn thermal(cores: u32) -> Report {
    let model = ThermalModel::default();
    let area = AreaModel::default();
    let spread_k = 2.0; // residual mismatch after band-level compensation
    let mut r = Report::new(
        format!(
            "Extension — ring trimming power, {cores} cores, {spread_k:.0} K residual mismatch (W)"
        ),
        &["architecture", "rings", "tolerance (K, 1 dB)", "trimming power (W)"],
    );
    for topo in paper_suite(cores) {
        let net = topo.build(RouterConfig::default());
        let rings = area.of(&net, 4, 4).rings;
        r.row(vec![
            topo.name(),
            rings.to_string(),
            format!("{:.2}", model.tolerance_k(1.0)),
            format!("{:.2}", model.network_tuning_w(rings, spread_k)),
        ]);
    }
    r
}

/// Technology-node scaling study (§I's premise): price the same CMESH and
/// OWN activity with DSENT-derived electrical coefficients at 45/32/22 nm.
/// At the paper's 45 nm node the OWN saving is largest (wire-dominated
/// CMESH); at newer nodes supply scaling (V²) shrinks electrical energy
/// while the photonic/wireless pJ/bit floor stays fixed, so the hybrid's
/// advantage narrows — the flip side of §I's scaling argument: the hybrid
/// wins *because* wires at 45 nm are expensive, and keeps winning only if
/// photonic/wireless efficiency scales along with CMOS (which Table III's
/// projected 0.1 pJ/bit CMOS transceivers are precisely about).
pub fn nodes(budget: Budget) -> Report {
    let mut r = Report::new(
        "Extension — technology scaling of the CMESH vs OWN power gap",
        &["node", "CMESH-256 (W)", "OWN-256 cfg4 (W)", "OWN saving"],
    );
    // Simulate once per topology; reprice per node.
    let cfg = SimConfig {
        rate: POWER_LOAD,
        pattern: TrafficPattern::Uniform,
        warmup: budget.warmup,
        measure: budget.measure,
        drain: budget.drain,
        ..Default::default()
    };
    let cmesh = Simulation::new(&noc_topology::CMesh::new(256), cfg).run();
    let own_r = Simulation::new(own(256).as_ref(), cfg).run();
    for tech in [TechNode::bulk45_lvt(), TechNode::bulk32_lvt(), TechNode::bulk22_lvt()] {
        let electrical =
            DsentRouter { radix: 8, vcs: 4, depth: 4, flit_bits: 128, tech }.calibrate();
        let mut cm_model = PowerModel::new(WirelessModel::baseline(Scenario::Ideal));
        cm_model.electrical = electrical;
        let mut own_model =
            PowerModel::new(WirelessModel::own(Scenario::Ideal, WinocConfig::Config4));
        own_model.electrical = electrical;
        let cm_w = cm_model.price(&cmesh.net, cmesh.cycles).total_w();
        let own_w = own_model.price(&own_r.net, own_r.cycles).total_w();
        r.row(vec![
            tech.name.to_string(),
            format!("{cm_w:.3}"),
            format!("{own_w:.3}"),
            format!("{:.0}%", (1.0 - own_w / cm_w) * 100.0),
        ]);
    }
    r
}

/// The §III-A antenna-placement study: corner vs centre transceivers.
///
/// The paper asserts that concentrating the four transceivers at the
/// cluster centre "could lead to load and thermal imbalance". Both
/// placements see the same four hot routers in *count* terms (the funnel
/// is architectural), so the discriminating metric is spatial: the peak
/// 2×2-tile neighbourhood load — a proxy for local power density and
/// therefore hot-spot temperature. Corner placement spreads the hot tiles
/// into four separate neighbourhoods; centre placement stacks them into
/// one.
pub fn placement(budget: Budget) -> Report {
    let mut r = Report::new(
        "Extension — antenna placement (§III-A), uniform @ 0.04",
        &[
            "placement",
            "avg latency (cycles)",
            "router hotspot (max/mean)",
            "peak 2x2 neighbourhood load (norm.)",
        ],
    );
    for (name, pl) in
        [("corners (paper)", AntennaPlacement::Corners), ("centre", AntennaPlacement::Center)]
    {
        let topo = Own256::with_placement(pl);
        let cfg = SimConfig {
            rate: 0.04,
            pattern: TrafficPattern::Uniform,
            warmup: budget.warmup,
            measure: budget.measure,
            drain: budget.drain,
            ..Default::default()
        };
        let res = Simulation::new(&topo, cfg).run();
        let load = crate::analysis::router_load(&res.net);
        // Peak summed load over every 2x2 window of each cluster's 4x4
        // tile grid, normalized by the per-router mean.
        let traversals = &res.net.stats.router_traversals;
        let mut peak = 0u64;
        for cl in 0..4usize {
            for wy in 0..3 {
                for wx in 0..3 {
                    let mut sum = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let tile = (wy + dy) * 4 + (wx + dx);
                            sum += traversals[cl * 16 + tile];
                        }
                    }
                    peak = peak.max(sum);
                }
            }
        }
        let norm_peak = peak as f64 / load.mean.max(1.0);
        r.row(vec![
            name.to_string(),
            format!("{:.1}", res.avg_latency),
            format!("{:.2}", load.hotspot_factor),
            format!("{norm_peak:.2}"),
        ]);
    }
    r
}

/// Latency decomposition per architecture: source-queue delay vs network
/// transit at a moderate uniform load — shows *where* each topology's
/// latency comes from (CMESH: many hops in the network; OWN near
/// saturation: queueing at the sources).
pub fn breakdown(budget: Budget) -> Report {
    let mut r = Report::new(
        "Extension — latency decomposition, 256 cores, uniform @ 0.04 (cycles)",
        &["architecture", "total", "source queue", "network transit"],
    );
    for topo in paper_suite(256) {
        let cfg = SimConfig {
            rate: 0.04,
            pattern: TrafficPattern::Uniform,
            warmup: budget.warmup,
            measure: budget.measure,
            drain: budget.drain,
            ..Default::default()
        };
        let res = Simulation::new(topo.as_ref(), cfg).run();
        r.row(vec![
            res.name.clone(),
            format!("{:.1}", res.avg_latency),
            format!("{:.1}", res.avg_queue_delay),
            format!("{:.1}", res.avg_network_latency),
        ]);
    }
    r
}

/// Bursty (Markov on/off) vs smooth traffic at equal mean load on OWN-256.
pub fn bursty(budget: Budget) -> Report {
    let mut r = Report::new(
        "Extension — bursty vs Bernoulli traffic, OWN-256 (equal ~3% mean load)",
        &["traffic", "packets", "avg latency (cycles)", "p99 (cycles)"],
    );
    // Bernoulli baseline.
    let cfg = SimConfig {
        rate: 0.03,
        pattern: TrafficPattern::Uniform,
        warmup: budget.warmup,
        measure: budget.measure,
        drain: budget.drain,
        ..Default::default()
    };
    let smooth = Simulation::new(own(256).as_ref(), cfg).run();
    r.row(vec![
        "Bernoulli".to_string(),
        smooth.packets_measured.to_string(),
        format!("{:.1}", smooth.avg_latency),
        smooth.p99_latency.to_string(),
    ]);
    // Bursty: duty ≈ p_on/(p_on+p_off) = 0.0075, 2-flit packets → mean
    // load = duty × len ≈ 0.015 flits/core/cycle per ON-cycle packet →
    // tune to land near 3%.
    let cycles = budget.warmup + budget.measure;
    let trace = Trace::bursty(256, cycles, 0.003, 0.2, 2, TrafficPattern::Uniform, 77);
    let mut net = own(256).build(RouterConfig::default());
    net.stats.measure_from = 0;
    let mut inj = TraceInjector::new(trace);
    let drained = inj.replay(&mut net, 400_000);
    assert!(drained, "bursty trace must drain");
    r.row(vec![
        "bursty (MMP on/off)".to_string(),
        net.stats.latency.count.to_string(),
        format!("{:.1}", net.stats.latency.mean()),
        net.stats.latency.quantile(0.99).to_string(),
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_report_shows_optxb_crossbar_blowup() {
        let r = area(256);
        let xbar = |name: &str| -> f64 { r.find(name).unwrap()[2].parse().unwrap() };
        assert!(xbar("OptXB-256") > 10.0 * xbar("CMESH-256"));
        // Ring counts: OptXB needs hundreds of thousands.
        let rings: u64 = r.find("OptXB-256").unwrap()[4].parse().unwrap();
        assert!(rings > 250_000, "paper: 'more than a million components'");
    }

    #[test]
    fn loss_report_ordering() {
        let r = loss();
        let l = |row: usize| r.cell_f64(row, 1);
        assert!(l(0) < l(1), "OWN cluster loss below OptXB-256");
        assert!(l(1) < l(2), "OptXB loss grows with scale");
    }

    #[test]
    fn sdm_report_all_feasible_with_directive_antennas() {
        let r = sdm();
        assert_eq!(r.rows.len(), 4);
        assert!(r.rows.iter().all(|row| row[2] == "yes"), "{r}");
    }

    #[test]
    fn reconfig_spares_nearly_double_diagonal_throughput() {
        let r = reconfig(Budget::quick());
        let thr = |name: &str| -> f64 { r.find(name).unwrap()[1].parse().unwrap() };
        let off = thr("OWN-256+spares-off");
        let diag = thr("OWN-256+diag-spares");
        assert!(
            diag > 1.5 * off,
            "spares should nearly double diagonal capacity: {off} -> {diag}
{r}"
        );
    }

    #[test]
    fn thermal_trimming_ranks_architectures() {
        let r = thermal(256);
        let w = |name: &str| -> f64 { r.find(name).unwrap()[3].parse().unwrap() };
        assert!(w("OptXB-256") > 3.0 * w("OWN-256"));
        assert_eq!(w("CMESH-256"), 0.0, "no rings, no trimming");
        let r1024 = thermal(1024);
        let w1024 = |name: &str| -> f64 { r1024.find(name).unwrap()[3].parse().unwrap() };
        assert!(
            w1024("OptXB-1024") > 100.0,
            "kilo-core monolithic crossbar trimming is hundreds of watts"
        );
    }

    #[test]
    fn own_saving_largest_at_the_papers_node() {
        let r = nodes(Budget::quick());
        assert_eq!(r.rows.len(), 3);
        let saving = |row: usize| -> f64 { r.rows[row][3].trim_end_matches('%').parse().unwrap() };
        // At 45 nm (the paper's node) the saving clears the >30% headline.
        assert!(saving(0) > 30.0, "45 nm saving {}%", saving(0));
        // The advantage narrows monotonically as CMOS scales while the
        // photonic floor stays fixed — but never inverts in this range.
        assert!(saving(0) > saving(1) && saving(1) > saving(2), "{r}");
        assert!(saving(2) > 0.0);
    }

    #[test]
    fn corner_placement_spreads_the_heat() {
        let r = placement(Budget::quick());
        let peak = |name: &str| -> f64 { r.find(name).unwrap()[3].parse().unwrap() };
        assert!(
            peak("corners (paper)") < 0.7 * peak("centre"),
            "corner placement must cut the peak neighbourhood load substantially\n{r}"
        );
    }

    #[test]
    fn breakdown_components_sum() {
        let r = breakdown(Budget::quick());
        for row in &r.rows {
            let total: f64 = row[1].parse().unwrap();
            let q: f64 = row[2].parse().unwrap();
            let n: f64 = row[3].parse().unwrap();
            assert!((q + n - total).abs() < 1.5, "{row:?}");
        }
    }

    #[test]
    fn bursty_traffic_has_heavier_tail() {
        let r = bursty(Budget::quick());
        let p99 = |row: usize| r.cell_f64(row, 3);
        // Bursts queue behind each other: the tail should be at least as
        // heavy as smooth traffic at the same mean load.
        assert!(p99(1) >= 0.8 * p99(0), "{r}");
    }
}
