//! Figures 7 and 8a: throughput and latency experiments.

use rayon::prelude::*;

use noc_topology::paper_suite;
use noc_traffic::TrafficPattern;

use crate::experiments::Budget;
use crate::report::Report;
use crate::sim::SimConfig;
use crate::sweep::{latency_vs_load, saturation_throughput};

/// Figure 7a: saturation throughput for each synthetic pattern on each
/// 256-core topology (flits/core/cycle).
pub fn fig7a(budget: Budget) -> Report {
    throughput_table(
        256,
        &TrafficPattern::paper_suite(),
        budget,
        "Figure 7a — throughput, 256 cores (flits/core/cycle)",
    )
}

/// Figure 8a: saturation throughput at 1024 cores for a selection of traces
/// (the paper compares "a select few synthetic traces" at this scale).
pub fn fig8a(budget: Budget) -> Report {
    let patterns =
        [TrafficPattern::Uniform, TrafficPattern::BitReversal, TrafficPattern::PerfectShuffle];
    throughput_table(
        1024,
        &patterns,
        budget,
        "Figure 8a — throughput, 1024 cores (flits/core/cycle)",
    )
}

fn throughput_table(
    cores: u32,
    patterns: &[TrafficPattern],
    budget: Budget,
    title: &str,
) -> Report {
    let names: Vec<String> = paper_suite(cores).iter().map(|t| t.name()).collect();
    let mut header: Vec<&str> = vec!["pattern"];
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    header.extend(name_refs.iter());
    let mut r = Report::new(title, &header);
    // One cell per (pattern, topology): all independent — parallelize.
    let cells: Vec<Vec<f64>> = patterns
        .par_iter()
        .map(|&pat| {
            paper_suite(cores)
                .par_iter()
                .map(|topo| saturation_throughput(topo.as_ref(), pat, budget.config()))
                .collect()
        })
        .collect();
    for (pat, row) in patterns.iter().zip(cells) {
        let mut cells = vec![pat.name().to_string()];
        cells.extend(row.iter().map(|t| format!("{t:.4}")));
        r.row(cells);
    }
    r
}

/// Figures 7b/7c: average latency vs offered load for every 256-core
/// topology under one pattern (7b: uniform; 7c: bit reversal).
pub fn fig7bc(pattern: TrafficPattern, loads: &[f64], budget: Budget) -> Report {
    let suite = paper_suite(256);
    let names: Vec<String> = suite.iter().map(|t| t.name()).collect();
    let mut header: Vec<String> = vec!["offered load".to_string()];
    header.extend(names);
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let fig = if pattern == TrafficPattern::Uniform { "7b" } else { "7c" };
    let mut r = Report::new(
        format!("Figure {fig} — latency vs load, {}, 256 cores (cycles)", pattern.name()),
        &header_refs,
    );
    let base = SimConfig { pattern, ..budget.config() };
    let curves: Vec<Vec<crate::sweep::LoadPoint>> =
        suite.par_iter().map(|topo| latency_vs_load(topo.as_ref(), pattern, loads, base)).collect();
    for (i, &load) in loads.iter().enumerate() {
        let mut row = vec![format!("{load:.3}")];
        for curve in &curves {
            // A trailing `*` marks a saturated point (see LoadPoint::saturated).
            let mark = if curve[i].saturated { "*" } else { "" };
            row.push(format!("{:.1}{mark}", curve[i].avg_latency));
        }
        r.row(row);
    }
    r
}

/// Default load sweep for Figures 7b/7c: up to the normalized-bisection
/// saturation point (~0.0625 flits/core/cycle under uniform traffic).
pub fn default_loads() -> Vec<f64> {
    vec![0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_all_cells_positive() {
        let r = fig7a(Budget { warmup: 300, measure: 800, drain: 0, sample_every: 0 });
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0 && v <= 1.0, "throughput {v} out of range");
            }
        }
    }

    #[test]
    fn fig7b_latency_monotone_headroom() {
        // At well-below-saturation loads latency should be finite and the
        // highest load should not be *faster* than the lowest.
        let r = fig7bc(
            TrafficPattern::Uniform,
            &[0.01, 0.05],
            Budget { warmup: 300, measure: 1_000, drain: 4_000, sample_every: 0 },
        );
        assert_eq!(r.rows.len(), 2);
        for col in 1..r.header.len() {
            // Cells may carry a trailing `*` saturation marker.
            let low: f64 = r.rows[0][col].trim_end_matches('*').parse().unwrap();
            let high: f64 = r.rows[1][col].trim_end_matches('*').parse().unwrap();
            assert!(low > 0.0);
            assert!(high >= 0.8 * low, "latency collapsed at load: {low} -> {high}");
        }
    }
}
