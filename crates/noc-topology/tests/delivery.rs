//! Cross-topology delivery and deadlock-freedom tests.
//!
//! Every topology in the paper's suite is soaked with every paper traffic
//! pattern at substantial load; all offered packets must eventually be
//! delivered (no deadlock, no loss, no misdelivery).

use noc_core::RouterConfig;
use noc_topology::{paper_suite, Topology};
use noc_traffic::{BernoulliInjector, TrafficPattern};

fn soak(topo: &dyn Topology, pattern: TrafficPattern, rate: f64, cycles: u64) {
    let mut net = topo.build(RouterConfig::default());
    let mut inj = BernoulliInjector::new(rate, 4, pattern, 0xC0FFEE);
    inj.drive(&mut net, cycles);
    let offered = net.stats.packets_offered;
    assert!(offered > 0, "{}: no traffic offered", topo.name());
    if let Err(stall) = net.try_drain(600_000) {
        panic!("{} failed to drain on {}:\n{stall}", topo.name(), pattern.name());
    }
    assert_eq!(
        net.stats.packets_delivered,
        offered,
        "{}: every offered packet must be delivered",
        topo.name()
    );
    net.check_invariants();
}

#[test]
fn all_topologies_drain_uniform_traffic_at_moderate_load() {
    for topo in paper_suite(256) {
        soak(topo.as_ref(), TrafficPattern::Uniform, 0.10, 2_000);
    }
}

#[test]
fn all_topologies_drain_adversarial_patterns() {
    for topo in paper_suite(256) {
        for pattern in [
            TrafficPattern::BitReversal,
            TrafficPattern::Transpose,
            TrafficPattern::PerfectShuffle,
            TrafficPattern::Neighbor,
        ] {
            soak(topo.as_ref(), pattern, 0.08, 1_200);
        }
    }
}

#[test]
fn all_topologies_survive_overload_burst() {
    // Offered load far beyond saturation for a short burst, then drain:
    // exercises backpressure paths and token starvation corners.
    for topo in paper_suite(256) {
        soak(topo.as_ref(), TrafficPattern::Uniform, 0.9, 300);
    }
}

#[test]
fn hotspot_traffic_drains_everywhere() {
    for topo in paper_suite(256) {
        soak(topo.as_ref(), TrafficPattern::Hotspot { target: 37, fraction: 0.5 }, 0.05, 1_000);
    }
}

#[test]
fn kilo_core_topologies_drain_uniform() {
    for topo in paper_suite(1024) {
        soak(topo.as_ref(), TrafficPattern::Uniform, 0.05, 600);
    }
}

#[test]
fn per_core_delivery_matches_pattern_for_permutations() {
    // For a permutation pattern, core i receives exactly the packets
    // addressed to it — count flits per destination.
    let topo = noc_topology::own(256);
    let mut net = topo.build(RouterConfig::default());
    let mut inj = BernoulliInjector::new(0.05, 2, TrafficPattern::BitReversal, 42);
    inj.drive(&mut net, 2_000);
    assert!(net.drain(100_000));
    let total: u64 = net.stats.per_core_ejected.iter().sum();
    assert_eq!(total, net.stats.flits_ejected);
    assert_eq!(net.stats.packets_delivered, net.stats.packets_offered);
}

#[test]
fn bisection_normalization_consistent_across_suite() {
    for cores in [256u32, 1024] {
        for topo in paper_suite(cores) {
            let b = topo.bisection_flits_per_cycle();
            assert!(
                (b - 8.0).abs() < 1e-9,
                "{}: normalized bisection should be 8 flits/cycle, got {b}",
                topo.name()
            );
        }
    }
}

#[test]
fn diameters_match_paper_quotes() {
    let d: Vec<(String, u32)> =
        paper_suite(256).iter().map(|t| (t.name(), t.diameter_hops())).collect();
    assert_eq!(d[0], ("CMESH-256".into(), 14)); // 2(√64 − 1)
    assert_eq!(d[1], ("wireless-CMESH-256".into(), 8)); // √64
    assert_eq!(d[2], ("OptXB-256".into(), 1));
    assert_eq!(d[3], ("p-Clos-256".into(), 2));
    assert_eq!(d[4], ("OWN-256".into(), 3));
}
