//! Reconfiguration-policy delivery and fault-model regression tests.
//!
//! Covers the spare-band policies end to end on OWN-256 (full-network
//! traffic, not just the reinforced pair) and pins down the two key
//! contracts of the resilience subsystem:
//!
//! * **Inertness** — attaching a fault model with an empty schedule and
//!   zero BER is bit-identical to not attaching one.
//! * **Determinism** — the same seed and fault schedule produce identical
//!   statistics, run after run.

use noc_core::{FaultConfig, FaultEvent, FaultSchedule, FaultTarget, LinkClass, RouterConfig};
use noc_topology::reconfig::{Own256Reconfig, ReconfigPolicy};
use noc_topology::Topology;
use noc_traffic::{BernoulliInjector, TrafficPattern};

/// Drive `topo` with uniform traffic, assert full delivery, return the net.
fn soak(topo: &dyn Topology, rate: f64, cycles: u64, seed: u64) -> noc_core::Network {
    let mut net = topo.build(RouterConfig::default());
    let mut inj = BernoulliInjector::new(rate, 3, TrafficPattern::Uniform, seed);
    inj.drive(&mut net, cycles);
    let offered = net.stats.packets_offered;
    assert!(offered > 0, "{}: no traffic offered", topo.name());
    if let Err(stall) = net.try_drain(600_000) {
        panic!("{} failed to drain:\n{stall}", topo.name());
    }
    assert_eq!(net.stats.packets_delivered, offered, "{}: lossless delivery", topo.name());
    net.check_invariants();
    net
}

#[test]
fn pairs_policy_delivers_full_network_traffic() {
    // Reinforced pairs must speed up their own traffic without breaking
    // anyone else's: all-to-all uniform load over the whole 256-core mesh.
    let topo = Own256Reconfig::new(ReconfigPolicy::Pairs(vec![(0, 2), (1, 3), (3, 1)]));
    let net = soak(&topo, 0.08, 1_500, 0xA11CE);
    // The spare bands actually carried some of the reinforced traffic.
    let spare_flits: u64 = net
        .channels()
        .iter()
        .zip(&net.stats.channel_flits)
        .filter(|(c, _)| matches!(c.class, LinkClass::Wireless { channel, .. } if channel >= 13))
        .map(|(_, &f)| f)
        .sum();
    assert!(spare_flits > 0, "reinforced pairs must use their spares");
}

#[test]
fn failover_policy_delivers_full_network_traffic() {
    // Static failover (primaries dead from cycle zero, spares carry the
    // pairs): the network remains fully connected under uniform load.
    let topo = Own256Reconfig::new(ReconfigPolicy::Failover(vec![(0, 2), (2, 0), (1, 3)]));
    let net = soak(&topo, 0.08, 1_500, 0xB0B);
    for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
        if let LinkClass::Wireless { channel, .. } = ch.class {
            // Bands 3 (0->2), 4 (2->0) and 2 (1->3) are the failed
            // primaries of Table I; their traffic must ride spares.
            if matches!(channel, 2..=4) {
                assert_eq!(f, 0, "dead primary band {channel} must stay dark");
            }
        }
    }
}

/// The channel id carrying wireless band 3 (the 0 -> 2 diagonal).
fn band3(net: &noc_core::Network) -> noc_core::ChannelId {
    net.channels()
        .iter()
        .position(|c| matches!(c.class, LinkClass::Wireless { channel: 3, .. }))
        .expect("band 3 missing") as noc_core::ChannelId
}

fn faulted_run(seed: u64) -> noc_core::NetStats {
    let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
    let mut net = topo.build(RouterConfig::default());
    let primary = band3(&net);
    net.attach_faults(FaultConfig {
        schedule: FaultSchedule::new()
            .with(FaultEvent::transient(300, FaultTarget::Channel(primary), 400))
            .with(FaultEvent::permanent(2_000, FaultTarget::Channel(primary))),
        channel_ber: vec![1e-4; net.channels().len()],
        detect_delay: 60,
        ..Default::default()
    });
    let mut inj = BernoulliInjector::new(0.05, 3, TrafficPattern::Uniform, seed);
    inj.drive(&mut net, 2_500);
    if let Err(stall) = net.try_drain(600_000) {
        panic!("faulted run must still drain:\n{stall}");
    }
    net.check_invariants();
    net.stats
}

#[test]
fn same_seed_and_schedule_replay_identically() {
    let a = faulted_run(0xDEED);
    let b = faulted_run(0xDEED);
    assert!(a.flits_corrupted > 0, "the BER process must actually fire");
    assert_eq!(a, b, "identical seed + schedule must replay bit-identically");
    let c = faulted_run(0xFEED);
    assert_ne!(a, c, "a different traffic seed must perturb the run");
}

#[test]
fn inert_fault_model_is_bit_identical_to_none() {
    let run = |attach: bool| {
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let mut net = topo.build(RouterConfig::default());
        if attach {
            // Empty schedule, all-zero BER: the model must never draw a
            // random number or touch a delivery.
            net.attach_faults(FaultConfig::default());
        }
        let mut inj = BernoulliInjector::new(0.06, 3, TrafficPattern::Transpose, 0x5EED);
        inj.drive(&mut net, 1_200);
        assert!(net.drain(600_000));
        net.stats
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(without, with, "an inert fault model must not perturb the simulation");
    assert_eq!(with.flits_corrupted, 0);
    assert_eq!(with.delivered_fraction(), 1.0);
}
