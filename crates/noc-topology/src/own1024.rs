//! OWN-1024: the kilo-core OWN architecture (Fig. 2, §III-B).
//!
//! Four *groups*, each a full 256-core OWN block (4 clusters × 16 tiles ×
//! 4 cores). Intra-cluster communication stays on the photonic MWSR
//! waveguides. The 16 wireless bands are allocated as:
//!
//! * **Bands 1–12** — inter-group SWMR multicast channels: for the ordered
//!   group pair (gs, gd) the Table I letter assignment is applied at group
//!   granularity — the transceivers with the TX letter in *all four*
//!   clusters of gs share the channel (a token circulates among them, the
//!   dotted path in Fig. 2), and a transmission is received by the RX-letter
//!   transceivers of all four clusters of gd; only the addressed cluster
//!   forwards, the rest discard (costing receiver power).
//! * **Bands 13–16** — one intra-group SWMR channel per group, carried by
//!   the D corner transceivers of its four clusters, connecting the clusters
//!   of a group to each other.
//!
//! Routing is at most three hops, as at 256 cores: photonic to the
//! transmitting corner tile of the *source* cluster, one wireless (multicast)
//! hop, photonic to the destination tile.
//!
//! **Virtual channels and deadlock freedom.** The paper partitions VCs by
//! inter-group direction (VC0 intra-group, VC1 vertical, VC2 horizontal,
//! VC3 diagonal). As at 256 cores, we instead make the three hop classes
//! ride disjoint media — corner *transit* wavelength groups → wireless
//! channels → home waveguides (terminal) — which renders the dependence
//! graph acyclic by construction and lets every hop use all four VCs; see
//! `own256` and DESIGN.md.

use noc_core::{
    BusKind, CoreId, LinkClass, Network, NetworkBuilder, PortId, RouteDecision, RouterConfig,
    RouterId, RoutingAlg,
};

use crate::channels::{Antenna, ChannelAllocation};
use crate::normalize::{latency, ser, token};
use crate::own256::{build_cluster_waveguides, corner_index, TILES};
use crate::topology::Topology;

const CONC: u32 = 4;
/// Clusters per group.
const CLUSTERS: u32 = 4;
/// Groups.
const GROUPS: u32 = 4;
/// Routers (tiles) per group.
const GROUP_TILES: u32 = CLUSTERS * TILES; // 64
/// Total routers.
const ROUTERS: u32 = GROUPS * GROUP_TILES; // 256

/// The 1024-core OWN architecture.
#[derive(Debug, Clone)]
pub struct Own1024 {
    alloc: ChannelAllocation,
}

impl Default for Own1024 {
    fn default() -> Self {
        Self::new()
    }
}

impl Own1024 {
    /// OWN-1024 with the Table I / Table II channel allocation.
    pub fn new() -> Self {
        Own1024 { alloc: ChannelAllocation::table_i() }
    }

    /// The inter-group allocation in use (Table I letters applied to
    /// groups).
    pub fn allocation(&self) -> &ChannelAllocation {
        &self.alloc
    }
}

/// Router id of the `letter` corner tile of cluster `c` in group `g`.
fn corner(g: u32, c: u32, letter: Antenna) -> RouterId {
    g * GROUP_TILES + c * TILES + letter.tile()
}

struct Own1024Routing {
    vcs: u8,
    /// `phot_port[router][t_local]` — write port onto the home waveguide of
    /// tile `t_local` in the same cluster.
    phot_port: Vec<[PortId; TILES as usize]>,
    /// `transit_port[router][k]` — write port onto corner `k`'s transit
    /// wavelength group in the same cluster.
    transit_port: Vec<[PortId; 4]>,
    /// `inter[gs][gd]` — per source cluster: `(tx_router, out_port)` for the
    /// inter-group channel gs → gd. Reader index = destination cluster.
    inter: Vec<[[(RouterId, PortId); CLUSTERS as usize]; GROUPS as usize]>,
    /// `intra[g]` — per cluster: `(tx_router, out_port)` for the group's
    /// intra-group channel. Reader index = destination cluster.
    intra: Vec<[(RouterId, PortId); CLUSTERS as usize]>,
}

impl RoutingAlg for Own1024Routing {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        if dr == router {
            return RouteDecision::any_vc((dst % CONC) as PortId, self.vcs);
        }
        let (g, rest) = (router / GROUP_TILES, router % GROUP_TILES);
        let c = rest / TILES;
        let (gd, restd) = (dr / GROUP_TILES, dr % GROUP_TILES);
        let (cd, td) = (restd / TILES, restd % TILES);
        if g == gd && c == cd {
            // Terminal photonic hop on the destination tile's home
            // waveguide.
            let p = self.phot_port[router as usize][td as usize];
            return RouteDecision::any_vc(p, self.vcs);
        }
        // Which wireless channel does this packet need, and who transmits?
        let (tx_router, tx_port) = if g == gd {
            self.intra[g as usize][c as usize]
        } else {
            self.inter[g as usize][gd as usize][c as usize]
        };
        if router == tx_router {
            // Wireless (multicast) hop, addressed to the destination
            // cluster's reader.
            return RouteDecision::any_vc(tx_port, self.vcs).to_reader(cd as u16);
        }
        // Photonic hop toward the transmitter corner on its transit
        // wavelength group.
        let k = corner_index(tx_router % TILES).expect("transmitters sit on corners");
        let p = self.transit_port[router as usize][k];
        RouteDecision::any_vc(p, self.vcs)
    }
}

impl Topology for Own1024 {
    fn name(&self) -> String {
        "OWN-1024".to_string()
    }

    fn num_cores(&self) -> u32 {
        1024
    }

    fn diameter_hops(&self) -> u32 {
        3
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // 8 inter-group channels cross either bisection, 1 flit/cycle each.
        8.0 / f64::from(ser::OWN_WIRELESS)
    }

    fn num_clusters(&self) -> usize {
        (GROUPS * CLUSTERS) as usize
    }

    fn cluster_of(&self, router: u32) -> usize {
        (router / TILES) as usize
    }

    fn num_groups(&self) -> usize {
        GROUPS as usize
    }

    fn group_of_cluster(&self, cluster: usize) -> usize {
        cluster / CLUSTERS as usize
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        assert!(cfg.vcs >= 4, "OWN needs 4 VCs");
        let mut b = NetworkBuilder::new(ROUTERS as usize, 1024, cfg);
        for r in 0..ROUTERS {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        // Intra-cluster photonic waveguides: 16 clusters globally.
        let mut phot_port = vec![[PortId::MAX; TILES as usize]; ROUTERS as usize];
        let mut transit_port = vec![[PortId::MAX; 4]; ROUTERS as usize];
        build_cluster_waveguides(&mut b, GROUPS * CLUSTERS, &mut phot_port, &mut transit_port);

        // Inter-group SWMR multicast channels (bands 1–12).
        let nil = (RouterId::MAX, PortId::MAX);
        let mut inter = vec![[[nil; CLUSTERS as usize]; GROUPS as usize]; GROUPS as usize];
        for l in &self.alloc.links {
            let (gs, gd) = (l.src, l.dst);
            let writers: Vec<RouterId> = (0..CLUSTERS).map(|c| corner(gs, c, l.tx)).collect();
            let readers: Vec<RouterId> = (0..CLUSTERS).map(|c| corner(gd, c, l.rx)).collect();
            let class = LinkClass::Wireless { channel: l.channel, distance: l.distance };
            let (_, wps, _) = b.add_bus(
                BusKind::SwmrMulticast,
                &writers,
                &readers,
                latency::WIRELESS,
                ser::OWN_WIRELESS,
                token::OWN_WIRELESS,
                class,
            );
            for cc in 0..CLUSTERS as usize {
                inter[gs as usize][gd as usize][cc] = (writers[cc], wps[cc]);
            }
        }
        // Intra-group channels on the D corners (bands 13–16).
        let mut intra = vec![[nil; CLUSTERS as usize]; GROUPS as usize];
        for l in ChannelAllocation::intra_group_links() {
            let g = l.src;
            let members: Vec<RouterId> = (0..CLUSTERS).map(|c| corner(g, c, Antenna::D)).collect();
            let class = LinkClass::Wireless { channel: l.channel, distance: l.distance };
            let (_, wps, _) = b.add_bus(
                BusKind::SwmrMulticast,
                &members,
                &members,
                latency::WIRELESS,
                ser::OWN_WIRELESS,
                token::OWN_WIRELESS,
                class,
            );
            for cc in 0..CLUSTERS as usize {
                intra[g as usize][cc] = (members[cc], wps[cc]);
            }
        }
        // Physical radix for power accounting (paper: up to 22 = 15
        // photonic + 3 wireless + 4 cores on corners).
        for r in 0..ROUTERS {
            let is_corner = corner_index(r % TILES).is_some();
            b.set_power_radix(r, if is_corner { 22 } else { 19 });
        }
        b.build(Box::new(Own1024Routing { vcs: cfg.vcs, phot_port, transit_port, inter, intra }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Own1024::new().build(RouterConfig::default())
    }

    /// Core id from (group, cluster, tile, pe).
    fn core(g: u32, c: u32, t: u32, p: u32) -> u32 {
        ((g * GROUP_TILES + c * TILES + t) * CONC) + p
    }

    #[test]
    fn structure_counts() {
        let n = net();
        assert_eq!(n.num_routers(), 256);
        assert_eq!(n.num_cores(), 1024);
        // 256 home waveguides + 64 corner transit groups + 12 inter-group
        // + 4 intra-group wireless buses.
        assert_eq!(n.buses().len(), 256 + 64 + 12 + 4);
        assert_eq!(n.channels().len(), 0, "all OWN-1024 media are shared buses");
    }

    #[test]
    fn corner_radix_matches_paper() {
        let n = net();
        // Tile A of cluster 0, group 0 (router 0): outputs = 4 eject + 15
        // photonic + inter-group TX writer(s); inputs = 4 inject + 1 home
        // photonic + wireless reader(s). Total wireless ports ≤ 3 as the
        // paper's radix 22 (15 photonic + 3 wireless + 4 cores) suggests.
        let r = n.router(0);
        assert_eq!(r.radix_for_power(), 22);
        assert_eq!(n.router(5).radix_for_power(), 19);
    }

    #[test]
    fn intra_cluster_photonic_only() {
        let mut n = net();
        n.inject_packet(core(2, 1, 3, 0), core(2, 1, 9, 2), 2);
        assert!(n.drain(1000));
        assert_eq!(n.stats.packets_delivered, 1);
        let wireless: u64 = n
            .buses()
            .iter()
            .zip(&n.stats.bus_flits)
            .filter(|(b, _)| matches!(b.class, LinkClass::Wireless { .. }))
            .map(|(_, &f)| f)
            .sum();
        assert_eq!(wireless, 0);
    }

    #[test]
    fn intra_group_uses_d_channel() {
        let mut n = net();
        // Group 1, cluster 0 -> cluster 2.
        n.inject_packet(core(1, 0, 5, 0), core(1, 2, 7, 1), 2);
        assert!(n.drain(2000));
        assert_eq!(n.stats.packets_delivered, 1);
        let wireless_flits: u64 = n
            .buses()
            .iter()
            .zip(&n.stats.bus_flits)
            .filter_map(|(b, &f)| match b.class {
                LinkClass::Wireless { channel, .. } if (13..=16).contains(&channel) => Some(f),
                _ => None,
            })
            .sum();
        assert_eq!(wireless_flits, 2, "intra-group traffic must ride bands 13-16");
        // Multicast discards at the 3 non-addressed readers.
        let discards: u64 = n.buses().iter().map(|b| b.discards).sum();
        assert_eq!(discards, 2 * 3);
    }

    #[test]
    fn inter_group_multicast_delivery() {
        let mut n = net();
        // Group 0 cluster 2 tile 9 -> group 2 cluster 3 tile 4. Channel
        // (0,2) is diagonal with TX letter A: photonic to A tile of
        // cluster 2, multicast to B tiles of group 2, forwarded in
        // cluster 3.
        n.inject_packet(core(0, 2, 9, 0), core(2, 3, 4, 3), 4);
        assert!(n.drain(2000));
        assert_eq!(n.stats.packets_delivered, 1);
        let inter_flits: u64 = n
            .buses()
            .iter()
            .zip(&n.stats.bus_flits)
            .filter_map(|(b, &f)| match b.class {
                LinkClass::Wireless { channel, .. } if (1..=12).contains(&channel) => Some(f),
                _ => None,
            })
            .sum();
        assert_eq!(inter_flits, 4);
    }

    #[test]
    fn all_group_pairs_reachable() {
        let mut n = net();
        let mut expected = 0;
        for gs in 0..4 {
            for gd in 0..4 {
                for (cs, cd) in [(0u32, 3u32), (2, 1)] {
                    if gs == gd && cs == cd {
                        continue;
                    }
                    n.inject_packet(core(gs, cs, 6, 0), core(gd, cd, 11, 2), 2);
                    expected += 1;
                }
            }
        }
        assert!(n.drain(20_000), "all group-pair traffic must drain");
        assert_eq!(n.stats.packets_delivered, expected);
    }

    #[test]
    fn token_shared_among_four_transmitters() {
        let mut n = net();
        // All four clusters of group 0 transmit to group 1 simultaneously:
        // the single (0,1) channel must serialize them via its token.
        for c in 0..4 {
            n.inject_packet(core(0, c, Antenna::B.tile(), 0), core(1, c, 5, 0), 2);
        }
        assert!(n.drain(5000));
        assert_eq!(n.stats.packets_delivered, 4);
    }
}
