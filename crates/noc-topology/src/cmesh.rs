//! CMESH: concentrated 2-D mesh — the pure-electrical baseline (§V-A).
//!
//! 4 cores per router, radix 8 (4 core ports + N/S/E/W), XY dimension-order
//! routing (deadlock-free without VC restrictions), maximum diameter
//! `2(√n − 1)` router hops where `n` is the router count. Links are
//! electrical with length equal to the router pitch on the die; their
//! serialization factor comes from the bisection normalization
//! ([`crate::normalize::ser::cmesh`]).

use noc_core::{
    CoreId, LinkClass, Network, NetworkBuilder, PortId, RouteDecision, RouterConfig, RouterId,
    RoutingAlg,
};

use crate::normalize::{latency, ser};
use crate::topology::Topology;

const CONC: u32 = 4;
const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

/// Concentrated mesh topology.
#[derive(Debug, Clone)]
pub struct CMesh {
    cores: u32,
    side: u32,
    /// Die edge length in millimetres (sets electrical link length).
    pub die_mm: f64,
}

impl CMesh {
    /// A CMESH for `cores` cores (must be `4·k²`). 256 cores → 8×8 routers
    /// on a 50 mm die; 1024 cores → 16×16 routers on a 100 mm substrate
    /// (four 2.5-D–integrated chips, as in the OWN floor plan).
    pub fn new(cores: u32) -> Self {
        let routers = cores / CONC;
        let side = (routers as f64).sqrt() as u32;
        assert_eq!(side * side * CONC, cores, "cores must be 4·k²");
        let die_mm = match cores {
            256 => 50.0,
            1024 => 100.0,
            _ => 50.0 * (cores as f64 / 256.0).sqrt(),
        };
        CMesh { cores, side, die_mm }
    }

    /// Routers per side of the grid.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Electrical hop length in millimetres (router pitch).
    pub fn pitch_mm(&self) -> f64 {
        self.die_mm / f64::from(self.side)
    }
}

struct CMeshRouting {
    side: u32,
    vcs: u8,
    /// `dir_port[router][dir]` — output port toward E/W/S/N.
    dir_port: Vec<[PortId; 4]>,
}

impl RoutingAlg for CMeshRouting {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        if dr == router {
            return RouteDecision::any_vc((dst % CONC) as PortId, self.vcs);
        }
        let (x, y) = (router % self.side, router / self.side);
        let (dx, dy) = (dr % self.side, dr / self.side);
        // XY dimension-order routing.
        let dir = if x < dx {
            EAST
        } else if x > dx {
            WEST
        } else if y < dy {
            SOUTH
        } else {
            NORTH
        };
        RouteDecision::any_vc(self.dir_port[router as usize][dir], self.vcs)
    }
}

impl Topology for CMesh {
    fn name(&self) -> String {
        format!("CMESH-{}", self.cores)
    }

    fn num_cores(&self) -> u32 {
        self.cores
    }

    fn diameter_hops(&self) -> u32 {
        2 * (self.side - 1)
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // side rows × 2 directions, divided by the serialization factor.
        f64::from(2 * self.side) / f64::from(ser::cmesh(self.cores))
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        let routers = (self.cores / CONC) as usize;
        let mut b = NetworkBuilder::new(routers, self.cores as usize, cfg);
        // Cores first so that eject port == local core index.
        for r in 0..routers as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        let class = LinkClass::Electrical { length_mm: self.pitch_mm() };
        let sc = ser::cmesh(self.cores);
        let mut dir_port = vec![[PortId::MAX; 4]; routers];
        for y in 0..self.side {
            for x in 0..self.side {
                let r = y * self.side + x;
                if x + 1 < self.side {
                    let e = r + 1;
                    let (_, op, _) = b.add_channel(r, e, latency::ELECTRICAL, sc, class);
                    dir_port[r as usize][EAST] = op;
                    let (_, op, _) = b.add_channel(e, r, latency::ELECTRICAL, sc, class);
                    dir_port[e as usize][WEST] = op;
                }
                if y + 1 < self.side {
                    let s = r + self.side;
                    let (_, op, _) = b.add_channel(r, s, latency::ELECTRICAL, sc, class);
                    dir_port[r as usize][SOUTH] = op;
                    let (_, op, _) = b.add_channel(s, r, latency::ELECTRICAL, sc, class);
                    dir_port[s as usize][NORTH] = op;
                }
            }
        }
        b.build(Box::new(CMeshRouting { side: self.side, vcs: cfg.vcs, dir_port }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_for_paper_sizes() {
        let c = CMesh::new(256);
        assert_eq!(c.side(), 8);
        assert_eq!(c.diameter_hops(), 14);
        let c = CMesh::new(1024);
        assert_eq!(c.side(), 16);
        assert_eq!(c.diameter_hops(), 30);
    }

    #[test]
    fn radix_is_8_as_in_the_paper() {
        let net = CMesh::new(256).build(RouterConfig::default());
        // Interior router: 4 core inject + 4 direction inputs = 8.
        let interior = 8 + 1; // router (1,1)
        assert_eq!(net.router(interior).num_in_ports(), 8);
        assert_eq!(net.router(interior).num_out_ports(), 8);
        // Corner router: 4 cores + 2 directions.
        assert_eq!(net.router(0).radix(), 6);
    }

    #[test]
    fn bisection_matches_normalization_target() {
        assert_eq!(CMesh::new(256).bisection_flits_per_cycle(), 8.0);
        assert_eq!(CMesh::new(1024).bisection_flits_per_cycle(), 8.0);
    }

    #[test]
    fn single_packet_crosses_the_mesh() {
        let mut net = CMesh::new(256).build(RouterConfig::default());
        // Core 0 (router 0, NW corner) to core 255 (router 63, SE corner).
        net.inject_packet(0, 255, 4);
        assert!(net.drain(2000), "corner-to-corner packet must drain");
        assert_eq!(net.stats.packets_delivered, 1);
        assert_eq!(net.stats.per_core_ejected[255], 4);
    }

    #[test]
    #[should_panic(expected = "4·k²")]
    fn non_square_core_count_rejected() {
        let _ = CMesh::new(200);
    }
}
