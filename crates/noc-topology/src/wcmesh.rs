//! Wireless-CMESH: the hybrid wireless-wired baseline (§V-A, WCube-like).
//!
//! "Each wireless cluster has 4 routers connected by an electrical crossbar,
//! and one router is a wireless router; 16 of the wireless clusters make up
//! the 256-core chip. Wireless routing is implemented as XY DOR … the radix
//! of the wireless-CMESH is 11 (3 electrical, 4 wireless x-y and 4 cores)."
//!
//! Concretely: routers are grouped into 4-router *subnets*; within a subnet
//! every router pair is joined by a short electrical link (full crossbar);
//! router 0 of each subnet carries a wireless transceiver with four
//! point-to-point mm-wave links to the neighbouring subnets' wireless
//! routers, routed XY over the subnet grid. Packets take: electrical hop to
//! the local wireless router → wireless XY hops → electrical hop to the
//! destination router (maximum `√n` hops for `n` routers).
//!
//! Deadlock freedom: the intra-subnet hops use VCs 0–1 and the wireless XY
//! hops use VCs 2–3; XY DOR is cycle-free on the wireless grid, and the
//! first/last electrical hops use disjoint channel sets (into vs out of the
//! wireless router), so the channel dependence graph is acyclic.

use noc_core::{
    CoreId, DistanceClass, LinkClass, Network, NetworkBuilder, PortId, RouteDecision, RouterConfig,
    RouterId, RoutingAlg,
};

use crate::normalize::{latency, ser};
use crate::topology::Topology;

const CONC: u32 = 4;
/// Routers per subnet.
const SUBNET: u32 = 4;
const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

/// The wireless-CMESH topology.
#[derive(Debug, Clone)]
pub struct WirelessCMesh {
    cores: u32,
    /// Subnets per side of the wireless grid.
    grid: u32,
}

impl WirelessCMesh {
    /// Build for `cores` cores: 256 → 4×4 subnets of 4 routers; 1024 → 8×8.
    pub fn new(cores: u32) -> Self {
        let subnets = cores / (CONC * SUBNET);
        let grid = (subnets as f64).sqrt() as u32;
        assert_eq!(grid * grid * CONC * SUBNET, cores, "cores must be 16·k²");
        WirelessCMesh { cores, grid }
    }

    /// Side of the subnet grid.
    pub fn grid(&self) -> u32 {
        self.grid
    }
}

struct WcmeshRouting {
    grid: u32,
    vcs: u8,
    /// `xbar_port[router][k]` — output port to router `k` of the same
    /// subnet (`PortId::MAX` on the diagonal).
    xbar_port: Vec<[PortId; SUBNET as usize]>,
    /// `wdir_port[subnet][dir]` — wireless output port at the subnet's
    /// wireless router toward E/W/S/N.
    wdir_port: Vec<[PortId; 4]>,
}

impl RoutingAlg for WcmeshRouting {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        if dr == router {
            return RouteDecision::any_vc((dst % CONC) as PortId, self.vcs);
        }
        let s = router / SUBNET;
        let ds = dr / SUBNET;
        if s == ds {
            // Intra-subnet electrical crossbar hop (VC class 0–1).
            let p = self.xbar_port[router as usize][(dr % SUBNET) as usize];
            return RouteDecision::vc_range(p, 0, 1);
        }
        let k = router % SUBNET;
        if k != 0 {
            // Electrical hop to the subnet's wireless router.
            let p = self.xbar_port[router as usize][0];
            return RouteDecision::vc_range(p, 0, 1);
        }
        // At the wireless router: XY DOR over the subnet grid (VCs 2–3).
        let (x, y) = (s % self.grid, s / self.grid);
        let (dx, dy) = (ds % self.grid, ds / self.grid);
        let dir = if x < dx {
            EAST
        } else if x > dx {
            WEST
        } else if y < dy {
            SOUTH
        } else {
            NORTH
        };
        RouteDecision::vc_range(self.wdir_port[s as usize][dir], 2, 3)
    }
}

impl Topology for WirelessCMesh {
    fn name(&self) -> String {
        format!("wireless-CMESH-{}", self.cores)
    }

    fn num_cores(&self) -> u32 {
        self.cores
    }

    fn diameter_hops(&self) -> u32 {
        // electrical + (2·(grid−1)) wireless + electrical.
        2 * (self.grid - 1) + 2
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        f64::from(2 * self.grid) / f64::from(ser::wcmesh_wireless(self.cores))
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        let subnets = (self.grid * self.grid) as usize;
        let routers = subnets * SUBNET as usize;
        let mut b = NetworkBuilder::new(routers, self.cores as usize, cfg);
        for r in 0..routers as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        // Intra-subnet full electrical crossbar (short links ~3 mm).
        let eclass = LinkClass::Electrical { length_mm: 3.0 };
        let mut xbar_port = vec![[PortId::MAX; SUBNET as usize]; routers];
        for s in 0..subnets as u32 {
            for a in 0..SUBNET {
                for bb in (a + 1)..SUBNET {
                    let (ra, rb) = (s * SUBNET + a, s * SUBNET + bb);
                    let (_, op, _) =
                        b.add_channel(ra, rb, latency::ELECTRICAL, ser::WCMESH_ELECTRICAL, eclass);
                    xbar_port[ra as usize][bb as usize] = op;
                    let (_, op, _) =
                        b.add_channel(rb, ra, latency::ELECTRICAL, ser::WCMESH_ELECTRICAL, eclass);
                    xbar_port[rb as usize][a as usize] = op;
                }
            }
        }
        // Wireless grid among the subnets' wireless routers (router 0 of
        // each subnet). Neighbour links are short-range mm-wave. The grid
        // has 2·grid·(grid−1) duplex links; with spatial reuse across a
        // ≥2-subnet separation, twelve bands cover them (bands cycle with
        // position and direction), so the allocation spans the full
        // Table III spectrum like the paper's WCube-style baselines.
        let mut wdir_port = vec![[PortId::MAX; 4]; subnets];
        let ws = ser::wcmesh_wireless(self.cores);
        let wr = |s: u32| s * SUBNET; // wireless router of subnet s
        for y in 0..self.grid {
            for x in 0..self.grid {
                let s = y * self.grid + x;
                let band = |k: u32| ((s * 4 + k) % 12 + 1) as u8;
                if x + 1 < self.grid {
                    let e = s + 1;
                    let cl = LinkClass::Wireless { channel: band(0), distance: DistanceClass::SR };
                    let (_, op, _) = b.add_channel(wr(s), wr(e), latency::WIRELESS, ws, cl);
                    wdir_port[s as usize][EAST] = op;
                    let cl = LinkClass::Wireless { channel: band(1), distance: DistanceClass::SR };
                    let (_, op, _) = b.add_channel(wr(e), wr(s), latency::WIRELESS, ws, cl);
                    wdir_port[e as usize][WEST] = op;
                }
                if y + 1 < self.grid {
                    let so = s + self.grid;
                    let cl = LinkClass::Wireless { channel: band(2), distance: DistanceClass::SR };
                    let (_, op, _) = b.add_channel(wr(s), wr(so), latency::WIRELESS, ws, cl);
                    wdir_port[s as usize][SOUTH] = op;
                    let cl = LinkClass::Wireless { channel: band(3), distance: DistanceClass::SR };
                    let (_, op, _) = b.add_channel(wr(so), wr(s), latency::WIRELESS, ws, cl);
                    wdir_port[so as usize][NORTH] = op;
                }
            }
        }
        b.build(Box::new(WcmeshRouting { grid: self.grid, vcs: cfg.vcs, xbar_port, wdir_port }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let w = WirelessCMesh::new(256);
        assert_eq!(w.grid(), 4);
        // Paper: maximum hop count √n where n = 64 routers → 8.
        assert_eq!(w.diameter_hops(), 8);
    }

    #[test]
    fn wireless_router_radix_is_11() {
        let net = WirelessCMesh::new(256).build(RouterConfig::default());
        // Interior wireless router: 4 cores + 3 crossbar + 4 wireless = 11.
        // Subnet (1,1) = subnet 5, wireless router = 20.
        assert_eq!(net.router(20).num_in_ports(), 11);
        assert_eq!(net.router(20).num_out_ports(), 11);
        // Non-wireless router: 4 cores + 3 crossbar = 7.
        assert_eq!(net.router(21).radix(), 7);
    }

    #[test]
    fn cross_chip_packet_delivered() {
        let mut net = WirelessCMesh::new(256).build(RouterConfig::default());
        // Core 5 (router 1, subnet 0) to core 251 (router 62, subnet 15).
        net.inject_packet(5, 251, 4);
        assert!(net.drain(2000));
        assert_eq!(net.stats.packets_delivered, 1);
        assert_eq!(net.stats.per_core_ejected[251], 4);
    }

    #[test]
    fn intra_subnet_stays_electrical() {
        let mut net = WirelessCMesh::new(256).build(RouterConfig::default());
        // Core 1 (router 0) to core 13 (router 3), same subnet 0.
        net.inject_packet(1, 13, 2);
        assert!(net.drain(500));
        let wireless: u64 = net
            .channels()
            .iter()
            .zip(&net.stats.channel_flits)
            .filter(|(c, _)| matches!(c.class, LinkClass::Wireless { .. }))
            .map(|(_, &n)| n)
            .sum();
        assert_eq!(wireless, 0, "intra-subnet traffic must not use wireless");
        assert_eq!(net.stats.packets_delivered, 1);
    }
}
