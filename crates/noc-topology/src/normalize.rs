//! Bisection-bandwidth equalization (§V-A).
//!
//! "In order for a fair comparison between different topologies, we have
//! kept the bisection bandwidth same for all the architectures by adding
//! appropriate delay into the network."
//!
//! We reproduce that methodology by fixing a common **bisection capacity
//! target** — the OWN wireless bisection of 8 channel-crossings × 1
//! flit/cycle (4 diagonal + 4 edge channels cross either bisection of the
//! chip, at both 256 and 1024 cores, because the wireless spectrum holds 16
//! channels regardless of core count) — and giving every other topology's
//! long-range channels a serialization factor (extra cycles of transmitter
//! occupancy per flit) that brings its bisection down to the same value:
//!
//! | topology | crossings @256 | @1024 | ser @256 | @1024 |
//! |----------|----------------|-------|----------|-------|
//! | OWN            | 8 wireless channels | 8  | 1 | 1 |
//! | CMESH          | 16 mesh links (8 rows × 2 dir) | 32 | 2 | 4 |
//! | wireless-CMESH | 8 wireless grid links | 16 | 1 | 2 |
//! | OptXB          | capacity-equalized: n waveguides / ser = 16 fl/cyc | — | 4 | 16 |
//! | p-Clos         | 16-up-bus middle stage (the cut itself) | 64 | 1 | 1 |
//!
//! For the shared photonic media (OptXB, p-Clos) the "crossing count" is the
//! effective concurrent-transfer capacity across the cut: a token-arbitrated
//! MWSR waveguide carries at most one flit per `ser` cycles regardless of
//! writer count, and under uniform traffic half of the home waveguides are
//! written from the other side of the chip; we take half the reader count as
//! the effective cut width (32 of 64 at 256 cores).
//!
//! Flit width is 128 bits and the router clock 2 GHz throughout, so one
//! flit/cycle ≙ 256 Gb/s and the normalized bisection is ~2 Tb/s.

/// Flit width in bits (all architectures).
pub const FLIT_BITS: u32 = 128;

/// Router/core clock in Hz (all architectures run at the same frequency,
/// §V: "keeping the router and core frequency same for all the networks").
pub const CLOCK_HZ: f64 = 2.0e9;

/// Normalized bisection capacity in flits per cycle (independent of scale —
/// pinned to OWN's 8 crossing wireless channels).
pub const BISECTION_FLITS_PER_CYCLE: f64 = 8.0;

/// Serialization factors per topology, as a function of core count.
pub mod ser {
    /// OWN wireless channels (the normalization reference).
    pub const OWN_WIRELESS: u32 = 1;
    /// OWN intra-cluster photonic waveguides.
    pub const OWN_PHOTONIC: u32 = 1;

    /// CMESH mesh links: `2·side` crossings normalized to 8 flits/cycle.
    pub fn cmesh(cores: u32) -> u32 {
        let side = ((cores / 4) as f64).sqrt() as u32;
        (2 * side / 8).max(1)
    }

    /// Wireless-CMESH subnet-grid wireless links.
    pub fn wcmesh_wireless(cores: u32) -> u32 {
        let grid = ((cores / 16) as f64).sqrt() as u32;
        (2 * grid / 8).max(1)
    }

    /// Wireless-CMESH intra-subnet electrical crossbar links (do not cross
    /// the bisection; full width).
    pub const WCMESH_ELECTRICAL: u32 = 1;

    /// OptXB crossbar waveguides: with `n` home waveguides the crossbar's
    /// uniform-traffic capacity is `n/ser` flits/cycle; equalizing to the
    /// common 16 flits/cycle (2 × the 8-flit bisection) gives ser = n/16 —
    /// 4 at 256 cores, 16 at 1024.
    pub fn optxb(cores: u32) -> u32 {
        ((cores / 4) / 16).max(1)
    }

    /// p-Clos up/down waveguides. The middle stage concentrates all
    /// traffic through `nodes/4` up-buses, so the stage itself is the
    /// narrowest cut: at ser 1 its capacity (16 flits/cycle at 256 cores)
    /// already sits at the common saturation target and no extra
    /// serialization is added.
    pub fn pclos(_cores: u32) -> u32 {
        1
    }
}

/// Channel flight latencies in cycles.
pub mod latency {
    /// Electrical mesh hop (a few mm of repeated wire).
    pub const ELECTRICAL: u32 = 1;
    /// Photonic waveguide: propagation along the snake plus O/E conversion.
    pub const PHOTONIC: u32 = 2;
    /// Wireless hop: <0.2 ns of flight at ≤60 mm, plus modulation.
    pub const WIRELESS: u32 = 1;
}

/// Token pass latencies (cycles) for the shared media.
pub mod token {
    /// OWN intra-cluster waveguides: the optical token circulates a 25 mm
    /// cluster ring in ~0.3 ns, under one 2 GHz cycle — passing is free.
    pub const OWN_PHOTONIC: u32 = 0;
    /// OptXB: 64/256 writers on a long snake — the paper notes its "token
    /// transfer consumes a few extra cycles".
    pub const OPTXB: u32 = 2;
    /// p-Clos buses.
    pub const PCLOS: u32 = 1;
    /// OWN-1024 wireless token among the four candidate transmitters of a
    /// group (a wireless grant beacon crosses the group in <1 cycle; one
    /// cycle covers the turnaround).
    pub const OWN_WIRELESS: u32 = 1;
}

/// Bisection capacity given crossing channel count and serialization, in
/// flits/cycle.
pub fn bisection(crossings: u32, ser_cycles: u32) -> f64 {
    f64::from(crossings) / f64::from(ser_cycles)
}

/// Bisection in bits per second.
pub fn bisection_bits_per_s(crossings: u32, ser_cycles: u32) -> f64 {
    bisection(crossings, ser_cycles) * f64::from(FLIT_BITS) * CLOCK_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_hit_the_common_target_at_256() {
        assert_eq!(bisection(8, ser::OWN_WIRELESS), BISECTION_FLITS_PER_CYCLE);
        assert_eq!(bisection(16, ser::cmesh(256)), BISECTION_FLITS_PER_CYCLE);
        assert_eq!(bisection(8, ser::wcmesh_wireless(256)), BISECTION_FLITS_PER_CYCLE);
        // OptXB: 64 waveguides / ser 4 = 16 flits/cycle capacity, half of
        // which crosses the bisection.
        assert_eq!(bisection(64, ser::optxb(256)) / 2.0, BISECTION_FLITS_PER_CYCLE);
        assert_eq!(bisection(8, ser::pclos(256)), BISECTION_FLITS_PER_CYCLE);
    }

    #[test]
    fn all_topologies_hit_the_common_target_at_1024() {
        assert_eq!(bisection(8, ser::OWN_WIRELESS), 8.0);
        assert_eq!(bisection(32, ser::cmesh(1024)), 8.0);
        assert_eq!(bisection(16, ser::wcmesh_wireless(1024)), 8.0);
        assert_eq!(bisection(256, ser::optxb(1024)) / 2.0, 8.0);
    }

    #[test]
    fn ser_factors_match_table() {
        assert_eq!(ser::cmesh(256), 2);
        assert_eq!(ser::cmesh(1024), 4);
        assert_eq!(ser::wcmesh_wireless(256), 1);
        assert_eq!(ser::wcmesh_wireless(1024), 2);
        assert_eq!(ser::optxb(256), 4);
        assert_eq!(ser::optxb(1024), 16);
        assert_eq!(ser::pclos(256), 1);
    }

    #[test]
    fn normalized_bisection_is_2_tbps() {
        let b = bisection_bits_per_s(8, 1);
        assert!((b - 2.048e12).abs() < 1e9, "got {b}");
    }

    #[test]
    fn serialization_reduces_bisection_proportionally() {
        assert_eq!(bisection(16, 1), 2.0 * bisection(16, 2));
    }
}
