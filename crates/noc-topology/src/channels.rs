//! OWN wireless channel allocation — Tables I and II of the paper.
//!
//! Each cluster places four wireless transceivers on its four corners,
//! lettered A–D (Fig. 1b). Inter-cluster connectivity at 256 cores uses 12
//! point-to-point channels in three distance classes (Table I):
//!
//! | class | distance | pairs (TX → RX) |
//! |-------|----------|------------------|
//! | C2C (diagonal) | ~60 mm | A3→B1, B1→A3, A0→B2, B2→A0 |
//! | E2E (edge)     | ~30 mm | A2→B3, B3→A2, A1→B0, B0→A1 |
//! | SR (short)     | ~10 mm | C0→C3, C3→C0, C1→C2, C2→C1 |
//!
//! Channels 13–16 are reconfiguration spares at 256 cores; at 1024 cores
//! they become the four intra-group channels, and the twelve inter-cluster
//! channels are promoted to inter-*group* SWMR multicast channels with the
//! same letter/distance assignment at group granularity (Table II: e.g. A0
//! of group 0 transmits to the A antennas of all four clusters of group 1).
//!
//! The geometric convention: quadrants are numbered 0 = NW, 1 = NE, 2 = SE,
//! 3 = SW, so pairs (0,2) and (1,3) are diagonal, (0,1) and (3,2) are
//! horizontal edges, and (0,3) and (1,2) are vertical edges whose corner
//! antennas sit ~10 mm apart (the short-range class).

use noc_core::DistanceClass;

/// Corner antenna letter within a cluster (Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Antenna {
    /// Corner antenna A (by convention tile (0,0) of the 4×4 tile grid).
    A,
    /// Corner antenna B (tile (3,0)).
    B,
    /// Corner antenna C (tile (0,3)).
    C,
    /// Corner antenna D (tile (3,3)); unused spare at 256 cores, carries
    /// intra-group traffic at 1024 cores.
    D,
}

impl Antenna {
    /// Tile index (0..16) hosting this antenna within the 4×4 tile grid of a
    /// cluster.
    pub fn tile(self) -> u32 {
        match self {
            Antenna::A => 0,  // (0,0)
            Antenna::B => 3,  // (3,0)
            Antenna::C => 12, // (0,3)
            Antenna::D => 15, // (3,3)
        }
    }
}

/// One directed wireless channel of the OWN allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirelessLink {
    /// Band index, 1-based as in Table III (1–16).
    pub channel: u8,
    /// Source quadrant (cluster at 256 cores, group at 1024).
    pub src: u32,
    /// Destination quadrant.
    pub dst: u32,
    /// Transmitting corner antenna (in the source quadrant).
    pub tx: Antenna,
    /// Receiving corner antenna (in the destination quadrant).
    pub rx: Antenna,
    /// Distance class (selects the link-distance power factor).
    pub distance: DistanceClass,
}

/// The complete OWN channel allocation.
#[derive(Debug, Clone)]
pub struct ChannelAllocation {
    /// The 12 inter-quadrant channels of Table I, in band order 1..=12:
    /// bands 1–4 diagonal (C2C), 5–8 edge (E2E), 9–12 short-range (SR).
    pub links: Vec<WirelessLink>,
}

impl ChannelAllocation {
    /// The Table I allocation.
    pub fn table_i() -> Self {
        use Antenna::*;
        use DistanceClass::*;
        let links = vec![
            // Diagonal / corner-to-corner, ~60 mm.
            WirelessLink { channel: 1, src: 3, dst: 1, tx: A, rx: B, distance: C2C },
            WirelessLink { channel: 2, src: 1, dst: 3, tx: B, rx: A, distance: C2C },
            WirelessLink { channel: 3, src: 0, dst: 2, tx: A, rx: B, distance: C2C },
            WirelessLink { channel: 4, src: 2, dst: 0, tx: B, rx: A, distance: C2C },
            // Edge-to-edge, ~30 mm.
            WirelessLink { channel: 5, src: 2, dst: 3, tx: A, rx: B, distance: E2E },
            WirelessLink { channel: 6, src: 3, dst: 2, tx: B, rx: A, distance: E2E },
            WirelessLink { channel: 7, src: 1, dst: 0, tx: A, rx: B, distance: E2E },
            WirelessLink { channel: 8, src: 0, dst: 1, tx: B, rx: A, distance: E2E },
            // Short range, ~10 mm.
            WirelessLink { channel: 9, src: 0, dst: 3, tx: C, rx: C, distance: SR },
            WirelessLink { channel: 10, src: 3, dst: 0, tx: C, rx: C, distance: SR },
            WirelessLink { channel: 11, src: 1, dst: 2, tx: C, rx: C, distance: SR },
            WirelessLink { channel: 12, src: 2, dst: 1, tx: C, rx: C, distance: SR },
        ];
        ChannelAllocation { links }
    }

    /// The intra-group channels added at 1024 cores (bands 13–16, one per
    /// group, carried by the D corner antennas). Their span is comparable to
    /// an edge link, hence the E2E distance class.
    pub fn intra_group_links() -> Vec<WirelessLink> {
        (0..4)
            .map(|g| WirelessLink {
                channel: 13 + g as u8,
                src: g,
                dst: g,
                tx: Antenna::D,
                rx: Antenna::D,
                distance: DistanceClass::E2E,
            })
            .collect()
    }

    /// The directed channel connecting quadrant `src` to quadrant `dst`.
    pub fn link(&self, src: u32, dst: u32) -> &WirelessLink {
        self.links
            .iter()
            .find(|l| l.src == src && l.dst == dst)
            .unwrap_or_else(|| panic!("no channel allocated for {src} -> {dst}"))
    }

    /// Space-division multiplexing frequency-reuse groups (§V-B): channel
    /// pairs whose signal paths do not intersect and may therefore share a
    /// band: `B3→A2 / B0→A1` (the opposite horizontal edges) and
    /// `C0→C3 / C1→C2` (the opposite vertical short-range edges), plus the
    /// reverse directions. Returns pairs of band indices.
    pub fn sdm_reuse_pairs() -> Vec<(u8, u8)> {
        vec![
            (5, 7),   // A2→B3 edge reuses with A1→B0 edge (south vs north)
            (6, 8),   // reverse directions
            (9, 11),  // C0→C3 reuses with C1→C2 (west vs east)
            (10, 12), // reverse directions
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_channels_every_ordered_pair_once() {
        let a = ChannelAllocation::table_i();
        assert_eq!(a.links.len(), 12);
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s == d {
                    continue;
                }
                let l = a.link(s, d);
                assert_eq!((l.src, l.dst), (s, d));
            }
        }
    }

    #[test]
    fn band_indices_unique_and_in_range() {
        let a = ChannelAllocation::table_i();
        let mut seen = std::collections::HashSet::new();
        for l in &a.links {
            assert!((1..=12).contains(&l.channel));
            assert!(seen.insert(l.channel), "duplicate band {}", l.channel);
        }
    }

    #[test]
    fn distance_classes_match_table_i() {
        let a = ChannelAllocation::table_i();
        // Diagonal pairs.
        assert_eq!(a.link(3, 1).distance, DistanceClass::C2C);
        assert_eq!(a.link(0, 2).distance, DistanceClass::C2C);
        // Edges.
        assert_eq!(a.link(2, 3).distance, DistanceClass::E2E);
        assert_eq!(a.link(0, 1).distance, DistanceClass::E2E);
        // Short range.
        assert_eq!(a.link(0, 3).distance, DistanceClass::SR);
        assert_eq!(a.link(1, 2).distance, DistanceClass::SR);
    }

    #[test]
    fn antenna_letters_match_table_i() {
        let a = ChannelAllocation::table_i();
        let l = a.link(3, 1);
        assert_eq!((l.tx, l.rx), (Antenna::A, Antenna::B)); // A3 -> B1
        let l = a.link(0, 1);
        assert_eq!((l.tx, l.rx), (Antenna::B, Antenna::A)); // B0 -> A1
        let l = a.link(1, 2);
        assert_eq!((l.tx, l.rx), (Antenna::C, Antenna::C)); // C1 -> C2
    }

    #[test]
    fn reverse_channels_swap_antennas() {
        let a = ChannelAllocation::table_i();
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s == d {
                    continue;
                }
                let fwd = a.link(s, d);
                let rev = a.link(d, s);
                assert_eq!(fwd.tx, rev.rx, "{s}->{d}");
                assert_eq!(fwd.rx, rev.tx, "{s}->{d}");
                assert_eq!(fwd.distance, rev.distance);
            }
        }
    }

    #[test]
    fn corner_tiles_are_distinct_corners() {
        let tiles: Vec<u32> =
            [Antenna::A, Antenna::B, Antenna::C, Antenna::D].iter().map(|a| a.tile()).collect();
        assert_eq!(tiles, vec![0, 3, 12, 15]);
    }

    #[test]
    fn intra_group_channels_are_bands_13_to_16() {
        let ls = ChannelAllocation::intra_group_links();
        assert_eq!(ls.len(), 4);
        for (i, l) in ls.iter().enumerate() {
            assert_eq!(l.channel, 13 + i as u8);
            assert_eq!(l.tx, Antenna::D);
        }
    }

    #[test]
    fn sdm_pairs_share_distance_class() {
        let a = ChannelAllocation::table_i();
        for (x, y) in ChannelAllocation::sdm_reuse_pairs() {
            let lx = a.links.iter().find(|l| l.channel == x).unwrap();
            let ly = a.links.iter().find(|l| l.channel == y).unwrap();
            assert_eq!(lx.distance, ly.distance);
            // Reuse requires disjoint quadrant pairs.
            assert_ne!((lx.src, lx.dst), (ly.src, ly.dst));
            assert!(lx.src != ly.src && lx.dst != ly.dst);
        }
    }
}
