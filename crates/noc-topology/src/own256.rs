//! OWN-256: the paper's 256-core optical-wireless NoC (Fig. 1, §III-A).
//!
//! Four 25×25 mm clusters, each with 16 tiles of 4 cores. Inside a cluster
//! every tile owns a *home* photonic waveguide that the other 15 tiles write
//! to (MWSR with a circulating token; 16 waveguides and 16 tokens per
//! cluster, 64 wavelengths from an off-chip laser). Between clusters, the
//! 12 wireless channels of Table I connect corner transceivers (see
//! [`crate::channels`]).
//!
//! Routing takes at most three hops: photonic to the source cluster's
//! transmitting corner tile, one wireless hop, photonic to the destination
//! tile (§V-A).
//!
//! **Corner transit waveguides.** All inter-cluster traffic funnels through
//! the three transmitting corner tiles of its cluster, so each corner tile's
//! home waveguide provisions a *second wavelength group* dedicated to that
//! transit traffic (the 64 DWDM wavelengths comfortably cover two 128-bit
//! flit-wide groups). The engine models the group as a separate MWSR bus;
//! the physical radix stays at the paper's 20/19 (one waveguide port), which
//! is what the power model is told via the power-radix override.
//!
//! **Deadlock freedom.** The three hop classes ride *disjoint* media —
//! transit waveguides → wireless channels → home waveguides — and home
//! waveguides carry only terminal traffic (their holders wait on nothing
//! but ejection), so the channel-dependence graph is acyclic by
//! construction and every hop can use all four VCs. This realizes the
//! paper's "2 VCs photonic + 2 VCs wireless" intent (§V-A) with a stronger,
//! provable discipline; see DESIGN.md.

use noc_core::{
    BusKind, CoreId, LinkClass, Network, NetworkBuilder, PortId, RouteDecision, RouterConfig,
    RouterId, RoutingAlg,
};

use crate::channels::ChannelAllocation;
use crate::normalize::{latency, ser, token};
use crate::topology::Topology;

const CONC: u32 = 4;
/// Tiles per cluster.
pub const TILES: u32 = 16;
/// Clusters.
pub const CLUSTERS: u32 = 4;

/// Where a cluster's four wireless transceivers sit (§III-A discusses the
/// trade-off: corner isolation balances load and heat; a central
/// concentration would be geometrically convenient but thermally hostile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AntennaPlacement {
    /// The paper's choice: tiles 0/3/12/15 (the four corners).
    Corners,
    /// The §III-A counterfactual: tiles 5/6/9/10 (the four centre tiles).
    Center,
}

impl AntennaPlacement {
    /// Tile-local ids hosting antennas A, B, C, D (in slot order).
    pub fn tiles(self) -> [u32; 4] {
        match self {
            AntennaPlacement::Corners => [0, 3, 12, 15],
            AntennaPlacement::Center => [5, 6, 9, 10],
        }
    }

    /// Antenna slot (0..4) of a tile-local id, if it hosts one.
    pub fn slot_of(self, tile_local: u32) -> Option<usize> {
        self.tiles().iter().position(|&t| t == tile_local)
    }

    /// Tile of antenna `letter` under this placement.
    pub fn tile(self, letter: crate::channels::Antenna) -> u32 {
        use crate::channels::Antenna::*;
        let slot = match letter {
            A => 0,
            B => 1,
            C => 2,
            D => 3,
        };
        self.tiles()[slot]
    }
}

/// The 256-core OWN architecture.
#[derive(Debug, Clone)]
pub struct Own256 {
    alloc: ChannelAllocation,
    placement: AntennaPlacement,
}

impl Default for Own256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Own256 {
    /// OWN with the Table I channel allocation and corner transceivers.
    pub fn new() -> Self {
        Own256 { alloc: ChannelAllocation::table_i(), placement: AntennaPlacement::Corners }
    }

    /// OWN with an explicit antenna placement (for the §III-A placement
    /// study).
    pub fn with_placement(placement: AntennaPlacement) -> Self {
        Own256 { alloc: ChannelAllocation::table_i(), placement }
    }

    /// The wireless channel allocation in use.
    pub fn allocation(&self) -> &ChannelAllocation {
        &self.alloc
    }

    /// The antenna placement in use.
    pub fn placement(&self) -> AntennaPlacement {
        self.placement
    }
}

pub(crate) struct Own256Routing {
    pub vcs: u8,
    /// `phot_port[router][t_local]` — write port onto the home waveguide of
    /// tile `t_local` in the same cluster (MAX on the diagonal).
    pub phot_port: Vec<[PortId; TILES as usize]>,
    /// `transit_port[router][k]` — write port onto the transit wavelength
    /// group of antenna slot `k` in the same cluster.
    pub transit_port: Vec<[PortId; 4]>,
    /// `wtx[c][d]` — `(tx_router, out_port)` for the wireless channel c → d.
    pub wtx: Vec<[(RouterId, PortId); CLUSTERS as usize]>,
    /// Antenna placement (maps transmitter tiles to transit slots).
    pub placement: AntennaPlacement,
}

/// Corner index (0..4) of a tile-local id, if it is a corner (the default
/// placement's antenna slots).
pub(crate) fn corner_index(tile_local: u32) -> Option<usize> {
    AntennaPlacement::Corners.slot_of(tile_local)
}

impl RoutingAlg for Own256Routing {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        if dr == router {
            return RouteDecision::any_vc((dst % CONC) as PortId, self.vcs);
        }
        let (c, _t) = (router / TILES, router % TILES);
        let (cd, td) = (dr / TILES, dr % TILES);
        if c == cd {
            // Terminal photonic hop on the destination tile's home
            // waveguide (holders wait only on ejection).
            let p = self.phot_port[router as usize][td as usize];
            return RouteDecision::any_vc(p, self.vcs);
        }
        let (tx_router, tx_port) = self.wtx[c as usize][cd as usize];
        if router == tx_router {
            // The wireless hop.
            return RouteDecision::any_vc(tx_port, self.vcs);
        }
        // Photonic hop toward the transmitter on its dedicated transit
        // wavelength group.
        let k =
            self.placement.slot_of(tx_router % TILES).expect("transmitters sit on antenna tiles");
        let p = self.transit_port[router as usize][k];
        RouteDecision::any_vc(p, self.vcs)
    }
}

/// Build the intra-cluster photonic MWSR crossbars for `clusters` clusters
/// of 16 tiles each, filling `phot_port` (home waveguides) and
/// `transit_port` (the corner tiles' transit wavelength groups). Shared
/// with OWN-1024.
pub(crate) fn build_cluster_waveguides(
    b: &mut NetworkBuilder,
    clusters: u32,
    phot_port: &mut [[PortId; TILES as usize]],
    transit_port: &mut [[PortId; 4]],
) {
    build_cluster_waveguides_with(b, clusters, phot_port, transit_port, AntennaPlacement::Corners)
}

/// As [`build_cluster_waveguides`], with an explicit antenna placement
/// deciding which tiles receive a transit wavelength group.
pub(crate) fn build_cluster_waveguides_with(
    b: &mut NetworkBuilder,
    clusters: u32,
    phot_port: &mut [[PortId; TILES as usize]],
    transit_port: &mut [[PortId; 4]],
    placement: AntennaPlacement,
) {
    for c in 0..clusters {
        for home_local in 0..TILES {
            let home = c * TILES + home_local;
            let writers: Vec<u32> =
                (0..TILES).filter(|&t| t != home_local).map(|t| c * TILES + t).collect();
            let (_, wps, _) = b.add_bus(
                BusKind::Mwsr,
                &writers,
                &[home],
                latency::PHOTONIC,
                ser::OWN_PHOTONIC,
                token::OWN_PHOTONIC,
                LinkClass::Photonic,
            );
            for (w, &src) in writers.iter().enumerate() {
                phot_port[src as usize][home_local as usize] = wps[w];
            }
            // Second wavelength group on antenna tiles: transit traffic
            // toward the wireless transmitters.
            if let Some(k) = placement.slot_of(home_local) {
                let (_, wps, _) = b.add_bus(
                    BusKind::Mwsr,
                    &writers,
                    &[home],
                    latency::PHOTONIC,
                    ser::OWN_PHOTONIC,
                    token::OWN_PHOTONIC,
                    LinkClass::Photonic,
                );
                for (w, &src) in writers.iter().enumerate() {
                    transit_port[src as usize][k] = wps[w];
                }
            }
        }
    }
}

impl Topology for Own256 {
    fn name(&self) -> String {
        "OWN-256".to_string()
    }

    fn num_cores(&self) -> u32 {
        256
    }

    fn diameter_hops(&self) -> u32 {
        3
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // 8 wireless channels cross the bisection (4 diagonal + 4 edge).
        8.0 / f64::from(ser::OWN_WIRELESS)
    }

    fn num_clusters(&self) -> usize {
        CLUSTERS as usize
    }

    fn cluster_of(&self, router: u32) -> usize {
        (router / TILES) as usize
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        assert!(cfg.vcs >= 4, "OWN needs 4 VCs (2 photonic + 2 wireless)");
        let routers = (CLUSTERS * TILES) as usize;
        let mut b = NetworkBuilder::new(routers, 256, cfg);
        for r in 0..routers as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        let mut phot_port = vec![[PortId::MAX; TILES as usize]; routers];
        let mut transit_port = vec![[PortId::MAX; 4]; routers];
        build_cluster_waveguides_with(
            &mut b,
            CLUSTERS,
            &mut phot_port,
            &mut transit_port,
            self.placement,
        );
        // Inter-cluster wireless point-to-point channels (Table I).
        let mut wtx = vec![[(RouterId::MAX, PortId::MAX); CLUSTERS as usize]; CLUSTERS as usize];
        for l in &self.alloc.links {
            let tx_router = l.src * TILES + self.placement.tile(l.tx);
            let rx_router = l.dst * TILES + self.placement.tile(l.rx);
            let class = LinkClass::Wireless { channel: l.channel, distance: l.distance };
            let (_, op, _) =
                b.add_channel(tx_router, rx_router, latency::WIRELESS, ser::OWN_WIRELESS, class);
            wtx[l.src as usize][l.dst as usize] = (tx_router, op);
        }
        // Physical radix for power accounting: the transit wavelength group
        // shares the corner tile's waveguide port, so corners stay at the
        // paper's radix 20 (15 photonic + 1 wireless + 4 cores) and plain
        // tiles at 19.
        for r in 0..routers as u32 {
            let hosts_antenna = self.placement.slot_of(r % TILES).is_some();
            b.set_power_radix(r, if hosts_antenna { 20 } else { 19 });
        }
        b.build(Box::new(Own256Routing {
            vcs: cfg.vcs,
            phot_port,
            transit_port,
            wtx,
            placement: self.placement,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::DistanceClass;

    fn net() -> Network {
        Own256::new().build(RouterConfig::default())
    }

    #[test]
    fn radix_matches_paper() {
        let net = net();
        // The power model sees the paper's physical radix: 20 for wireless
        // corner tiles (15 photonic + 1 wireless + 4 cores), 19 for plain
        // tiles. (Engine port counts are higher because the corner transit
        // wavelength groups are modelled as separate buses.)
        assert_eq!(net.router(0).radix_for_power(), 20);
        assert_eq!(net.router(5).radix_for_power(), 19);
        // Engine ports: corner tile 0 = 4 eject + 15 home + 3 transit +
        // 1 wireless TX = 23; plain tile = 4 + 15 + 4 transit = 23.
        assert_eq!(net.router(0).num_out_ports(), 23);
        assert_eq!(net.router(5).num_out_ports(), 23);
    }

    #[test]
    fn intra_cluster_is_one_photonic_hop() {
        let mut n = net();
        // Core 0 (cluster 0 tile 0) to core 20 (cluster 0 tile 5).
        n.inject_packet(0, 20, 4);
        assert!(n.drain(1000));
        assert_eq!(n.stats.packets_delivered, 1);
        assert_eq!(n.stats.bus_flits.iter().sum::<u64>(), 4, "one bus hop per flit");
        let wireless: u64 = n.stats.channel_flits.iter().sum();
        assert_eq!(wireless, 0);
    }

    #[test]
    fn inter_cluster_takes_three_hops() {
        let mut n = net();
        // Core 4 (cluster 0, tile 1) to core 1*64 + 5*4 = 84 (cluster 1,
        // tile 5): photonic -> wireless B0->A1 -> photonic.
        n.inject_packet(4, 84, 2);
        assert!(n.drain(1000));
        assert_eq!(n.stats.packets_delivered, 1);
        assert_eq!(n.stats.bus_flits.iter().sum::<u64>(), 4, "two photonic hops per flit");
        assert_eq!(n.stats.channel_flits.iter().sum::<u64>(), 2, "one wireless hop per flit");
    }

    #[test]
    fn source_at_transmitter_skips_first_photonic_hop() {
        let mut n = net();
        // Cluster 0's TX toward cluster 1 is antenna B0 = tile 3, router 3,
        // cores 12..16. Send from core 12 to cluster 1.
        n.inject_packet(12, 64, 1);
        assert!(n.drain(1000));
        // one wireless + one photonic (inside cluster 1, tile 0 = A1 RX...
        // destination router is 16 (tile 0 of cluster 1) == RX tile, so the
        // flit ejects right after the wireless hop.
        assert_eq!(n.stats.channel_flits.iter().sum::<u64>(), 1);
    }

    #[test]
    fn wireless_channels_have_table_i_classes() {
        let n = net();
        let mut c2c = 0;
        let mut e2e = 0;
        let mut sr = 0;
        for ch in n.channels() {
            if let LinkClass::Wireless { distance, .. } = ch.class {
                match distance {
                    DistanceClass::C2C => c2c += 1,
                    DistanceClass::E2E => e2e += 1,
                    DistanceClass::SR => sr += 1,
                }
            }
        }
        assert_eq!((c2c, e2e, sr), (4, 4, 4));
    }

    #[test]
    fn every_cluster_pair_reachable() {
        let mut n = net();
        for c in 0..4u32 {
            for d in 0..4u32 {
                if c == d {
                    continue;
                }
                // tile 7, core 2 of cluster c -> tile 9, core 1 of cluster d.
                n.inject_packet(c * 64 + 7 * 4 + 2, d * 64 + 9 * 4 + 1, 2);
            }
        }
        assert!(n.drain(5000));
        assert_eq!(n.stats.packets_delivered, 12);
    }

    #[test]
    fn bisection_is_normalized_target() {
        assert_eq!(Own256::new().bisection_flits_per_cycle(), 8.0);
    }

    #[test]
    fn placements_host_four_distinct_antenna_tiles() {
        for p in [AntennaPlacement::Corners, AntennaPlacement::Center] {
            let tiles = p.tiles();
            let set: std::collections::HashSet<u32> = tiles.iter().copied().collect();
            assert_eq!(set.len(), 4);
            for (slot, &t) in tiles.iter().enumerate() {
                assert_eq!(p.slot_of(t), Some(slot));
            }
            assert_eq!(p.slot_of(1), None);
        }
    }

    #[test]
    fn center_placement_delivers_all_traffic() {
        let topo = Own256::with_placement(AntennaPlacement::Center);
        let mut n = topo.build(RouterConfig::default());
        for c in 0..4u32 {
            for d in 0..4u32 {
                if c != d {
                    n.inject_packet(c * 64 + 7 * 4, d * 64 + 9 * 4 + 1, 2);
                }
            }
        }
        assert!(n.drain(10_000));
        assert_eq!(n.stats.packets_delivered, 12);
    }

    #[test]
    fn center_placement_hosts_antennas_on_center_tiles() {
        let topo = Own256::with_placement(AntennaPlacement::Center);
        let n = topo.build(RouterConfig::default());
        // Centre tiles carry the wireless radix; corners do not.
        assert_eq!(n.router(5).radix_for_power(), 20);
        assert_eq!(n.router(0).radix_for_power(), 19);
    }
}
