//! p-Clos: the photonic Clos baseline (Joshi et al., §V-A).
//!
//! "For the p-Clos architecture, we assumed that the maximum number of hops
//! is two i.e. all concentrated nodes are connected to one level of switches
//! before they are connected back to the router. We implement MWSR with
//! token arbitration."
//!
//! Our realization: `N` concentrated node routers and `M` middle switches
//! (M sized to the normalized bisection; see [`PClos::middles`]). Each middle switch reads one MWSR *up* waveguide written by all
//! node routers; each node router reads one MWSR *down* waveguide written by
//! all middle switches. A packet takes exactly two hops: node → middle →
//! node, with the middle chosen deterministically by `(src + dst) mod M`
//! (spreads load across middles while keeping routing deterministic). The
//! up→down channel ordering makes the dependence graph acyclic, so no VC
//! restriction is needed.

use noc_core::{
    BusKind, CoreId, LinkClass, Network, NetworkBuilder, PortId, RouteDecision, RouterConfig,
    RouterId, RoutingAlg,
};

use crate::normalize::{latency, ser, token};
use crate::topology::Topology;

const CONC: u32 = 4;

/// Photonic Clos topology.
#[derive(Debug, Clone)]
pub struct PClos {
    cores: u32,
}

impl PClos {
    /// p-Clos for `cores` cores: 256 → 64 nodes + 16 middles; 1024 → 256
    /// nodes + 16 (larger-radix) middles.
    pub fn new(cores: u32) -> Self {
        assert_eq!(cores % (CONC * 8), 0, "cores must be a multiple of 32");
        PClos { cores }
    }

    /// Node router count.
    pub fn nodes(&self) -> u32 {
        self.cores / CONC
    }

    /// Middle switch count: sized so the middle stage's capacity (one
    /// flit/cycle per up-bus) matches twice the normalized bisection of 8
    /// flits/cycle — 16 middles at every scale. At 1024 cores the middles
    /// become radix-256 switches, which is where the paper's "p-Clos also
    /// adds power due to the increase in the number of routers" shows up.
    pub fn middles(&self) -> u32 {
        16.min(self.nodes() / 4).max(1)
    }
}

struct PClosRouting {
    nodes: u32,
    middles: u32,
    vcs: u8,
    /// `up_port[node][m]` — node's write port onto middle m's up-bus.
    up_port: Vec<Vec<PortId>>,
    /// `down_port[m][node]` — middle m's write port onto node's down-bus.
    down_port: Vec<Vec<PortId>>,
}

impl RoutingAlg for PClosRouting {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        if router >= self.nodes {
            // At a middle switch: go down to the destination node.
            let m = (router - self.nodes) as usize;
            return RouteDecision::any_vc(self.down_port[m][dr as usize], self.vcs);
        }
        if dr == router {
            return RouteDecision::any_vc((dst % CONC) as PortId, self.vcs);
        }
        let m = ((router + dr) % self.middles) as usize;
        RouteDecision::any_vc(self.up_port[router as usize][m], self.vcs)
    }
}

impl Topology for PClos {
    fn name(&self) -> String {
        format!("p-Clos-{}", self.cores)
    }

    fn num_cores(&self) -> u32 {
        self.cores
    }

    fn diameter_hops(&self) -> u32 {
        2
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // The middle stage carries *all* traffic through `middles()`
        // buses; about half of uniform traffic crosses the chip bisection,
        // so the effective bisection capacity is half the stage capacity
        // (16/2 = 8 flits/cycle at 256 cores, on the common target).
        f64::from(self.middles()) / 2.0 / f64::from(ser::pclos(self.cores))
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        let n = self.nodes() as usize;
        let m = self.middles() as usize;
        let mut b = NetworkBuilder::new(n + m, self.cores as usize, cfg);
        for r in 0..n as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        let nodes: Vec<u32> = (0..n as u32).collect();
        // Up waveguides: all nodes write, middle reads.
        let mut up_port = vec![vec![PortId::MAX; m]; n];
        for mid in 0..m as u32 {
            let (_, wps, _) = b.add_bus(
                BusKind::Mwsr,
                &nodes,
                &[n as u32 + mid],
                latency::PHOTONIC,
                ser::pclos(self.cores),
                token::PCLOS,
                LinkClass::Photonic,
            );
            for (w, &src) in nodes.iter().enumerate() {
                up_port[src as usize][mid as usize] = wps[w];
            }
        }
        // Down waveguides: all middles write, node reads.
        let middles: Vec<u32> = (0..m as u32).map(|i| n as u32 + i).collect();
        let mut down_port = vec![vec![PortId::MAX; n]; m];
        for node in 0..n as u32 {
            let (_, wps, _) = b.add_bus(
                BusKind::Mwsr,
                &middles,
                &[node],
                latency::PHOTONIC,
                ser::pclos(self.cores),
                token::PCLOS,
                LinkClass::Photonic,
            );
            for (w, _) in middles.iter().enumerate() {
                down_port[w][node as usize] = wps[w];
            }
        }
        b.build(Box::new(PClosRouting {
            nodes: n as u32,
            middles: m as u32,
            vcs: cfg.vcs,
            up_port,
            down_port,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let p = PClos::new(256);
        assert_eq!(p.nodes(), 64);
        assert_eq!(p.middles(), 16);
        assert_eq!(p.diameter_hops(), 2);
        assert_eq!(PClos::new(1024).middles(), 16);
    }

    #[test]
    fn exactly_two_hops() {
        let mut net = PClos::new(256).build(RouterConfig::default());
        net.inject_packet(0, 200, 4);
        assert!(net.drain(1000));
        assert_eq!(net.stats.packets_delivered, 1);
        // 4 flits × 2 bus hops each.
        assert_eq!(net.stats.bus_flits.iter().sum::<u64>(), 8);
    }

    #[test]
    fn node_and_middle_radices() {
        let net = PClos::new(256).build(RouterConfig::default());
        // Node: out = 4 eject + 16 up-writes = 20; in = 4 inject + 1 down.
        assert_eq!(net.router(0).num_out_ports(), 20);
        assert_eq!(net.router(0).num_in_ports(), 5);
        // Middle: out = 64 down-writes; in = 1 up-read.
        assert_eq!(net.router(64).num_out_ports(), 64);
        assert_eq!(net.router(64).num_in_ports(), 1);
    }

    #[test]
    fn all_pairs_sample_delivers() {
        let mut net = PClos::new(64).build(RouterConfig::default());
        for s in (0..64).step_by(7) {
            let d = (s + 33) % 64;
            net.inject_packet(s, d, 2);
        }
        assert!(net.drain(5000));
        assert_eq!(net.stats.packets_delivered, 10);
    }
}
