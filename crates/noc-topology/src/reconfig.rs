//! Reconfiguration channels: OWN-256 with bands 13–16 in service.
//!
//! Table III reserves links 13–16 as "reconfiguration channels that could
//! adaptively be utilized to improve performance" (§IV). This module
//! implements that extension: the four spare transceiver pairs are assigned
//! to reinforce chosen cluster pairs, giving those pairs two parallel
//! wireless channels. Packets alternate deterministically between the
//! primary and spare channel (by source-tile parity), which halves the
//! per-channel load on the reinforced pairs.
//!
//! Two static policies are provided plus a profile-driven one and a
//! runtime-protection one:
//!
//! * [`ReconfigPolicy::Diagonal`] — reinforce the four diagonal (C2C)
//!   channels, the longest and most expensive links.
//! * [`ReconfigPolicy::Pairs`] — reinforce an explicit list of ordered
//!   cluster pairs (at most four), e.g. chosen from a profiling run.
//! * [`ReconfigPolicy::Protect`] — hold the spare of each listed pair
//!   **dark** until the engine's fault-detection machinery reports the
//!   pair's primary transceiver dead (see `noc_core::fault`); the pair's
//!   traffic then fails over onto the spare at runtime, and back again if
//!   the primary recovers.
//! * [`profile_hot_pairs`] — measure per-pair wireless traffic of a
//!   finished simulation and return the four busiest ordered pairs, closing
//!   the adaptive loop the paper sketches: profile → reassign → rerun.
//!
//! The spare channel of a reinforced pair rides the otherwise-idle **D
//! corner transceivers** (unused at 256 cores, §III-A), so reinforced
//! traffic gains a second independent path end to end: its own transit
//! waveguide into the D corner, its own wireless band, and the D corner's
//! egress at the destination — not merely a second frequency on the same
//! funnel.

use noc_core::{
    ChannelId, CoreId, FaultTarget, LinkClass, Network, NetworkBuilder, PortId, RouteDecision,
    RouterConfig, RouterId, RoutingAlg,
};

use crate::channels::ChannelAllocation;
use crate::normalize::{latency, ser};
use crate::own256::{build_cluster_waveguides, corner_index, Own256Routing, CLUSTERS, TILES};
use crate::topology::Topology;

const CONC: u32 = 4;

/// How the four spare bands (13–16) are deployed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigPolicy {
    /// Spares stay dark (plain OWN-256).
    None,
    /// Reinforce the four diagonal (C2C) channels.
    Diagonal,
    /// Reinforce up to four explicit ordered cluster pairs.
    Pairs(Vec<(u32, u32)>),
    /// Fault tolerance: the listed pairs' *primary* transceivers have
    /// failed; all of their traffic fails over to the spare band on the D
    /// corners. Up to four failed pairs can be covered.
    Failover(Vec<(u32, u32)>),
    /// Runtime fault tolerance: the listed pairs get a dark standby spare.
    /// Traffic stays on the primary until a scheduled fault on it is
    /// *detected* (`RoutingAlg::fault_notice`, one `detect_delay` after the
    /// fault fires), switches to the spare band, and switches back when the
    /// primary's recovery is detected. Up to four pairs can be protected.
    Protect(Vec<(u32, u32)>),
}

impl ReconfigPolicy {
    /// The ordered cluster pairs that receive a spare channel.
    pub fn reinforced_pairs(&self) -> Vec<(u32, u32)> {
        match self {
            ReconfigPolicy::None => Vec::new(),
            ReconfigPolicy::Diagonal => vec![(3, 1), (1, 3), (0, 2), (2, 0)],
            ReconfigPolicy::Pairs(ps)
            | ReconfigPolicy::Failover(ps)
            | ReconfigPolicy::Protect(ps) => {
                assert!(ps.len() <= 4, "only four spare bands exist");
                ps.clone()
            }
        }
    }

    /// Whether the reinforced pairs' primaries are out of service.
    pub fn primaries_failed(&self) -> bool {
        matches!(self, ReconfigPolicy::Failover(_))
    }

    /// Whether the spares are dark standby awaiting runtime fault notices.
    pub fn runtime_protect(&self) -> bool {
        matches!(self, ReconfigPolicy::Protect(_))
    }
}

/// OWN-256 with the reconfiguration bands deployed under a policy.
#[derive(Debug, Clone)]
pub struct Own256Reconfig {
    alloc: ChannelAllocation,
    policy: ReconfigPolicy,
}

impl Own256Reconfig {
    /// OWN-256 with the given spare-band policy.
    pub fn new(policy: ReconfigPolicy) -> Self {
        Own256Reconfig { alloc: ChannelAllocation::table_i(), policy }
    }

    /// The active policy.
    pub fn policy(&self) -> &ReconfigPolicy {
        &self.policy
    }
}

struct ReconfigRouting {
    base: Own256Routing,
    /// `spare[c][d]` — spare wireless out port at the **D corner** of
    /// cluster `c` for the reinforced pair c → d.
    spare: Vec<[Option<PortId>; CLUSTERS as usize]>,
    /// Failover mode: route *all* reinforced-pair traffic via the spare
    /// (the primary transceiver is dead).
    failover: bool,
    /// Runtime-protection mode: spares are dark standby, activated per
    /// pair by `fault_notice` when the primary's failure is detected.
    protect: bool,
    /// Primary wireless channel of each protected pair, `(channel, s, d)`.
    primaries: Vec<(ChannelId, u32, u32)>,
    /// `failed[c][d]` — the pair's primary is currently known-dead.
    failed: Vec<[bool; CLUSTERS as usize]>,
}

/// Tile-local index of the D corner.
const D_TILE: u32 = 15;
/// Corner index of D in the transit-waveguide table.
const D_CORNER: usize = 3;

impl RoutingAlg for ReconfigRouting {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        let (c, t) = (router / TILES, router % TILES);
        let cd = (dr / TILES) % CLUSTERS;
        if dr != router && c != cd {
            if let Some(spare_port) = self.spare[c as usize][cd as usize] {
                // Load-balance mode: split by destination-tile parity.
                // Failover mode: the primary is dead — everything takes
                // the spare path via the D corner. Protect mode: spare
                // only once the primary's failure has been detected.
                let take_spare = if self.failover {
                    true
                } else if self.protect {
                    self.failed[c as usize][cd as usize]
                } else {
                    (dr % TILES) % 2 == 1
                };
                if take_spare {
                    if t == D_TILE {
                        // At the D corner: the spare wireless hop.
                        return RouteDecision::any_vc(spare_port, self.base.vcs);
                    }
                    // Photonic transit hop toward the D corner.
                    let p = self.base.transit_port[router as usize][D_CORNER];
                    return RouteDecision::any_vc(p, self.base.vcs);
                }
            }
        }
        self.base.route(router, dst)
    }

    fn fault_notice(&mut self, target: FaultTarget, up: bool) -> bool {
        if !self.protect {
            return false;
        }
        let FaultTarget::Channel(ch) = target else { return false };
        let Some(&(_, s, d)) = self.primaries.iter().find(|&&(c, _, _)| c == ch) else {
            return false;
        };
        let slot = &mut self.failed[s as usize][d as usize];
        let want = !up;
        if *slot == want {
            return false;
        }
        *slot = want;
        true
    }
}

impl Topology for Own256Reconfig {
    fn name(&self) -> String {
        match &self.policy {
            ReconfigPolicy::None => "OWN-256+spares-off".to_string(),
            ReconfigPolicy::Diagonal => "OWN-256+diag-spares".to_string(),
            ReconfigPolicy::Pairs(_) => "OWN-256+profiled-spares".to_string(),
            ReconfigPolicy::Failover(_) => "OWN-256+failover".to_string(),
            ReconfigPolicy::Protect(_) => "OWN-256+protect".to_string(),
        }
    }

    fn num_cores(&self) -> u32 {
        256
    }

    fn diameter_hops(&self) -> u32 {
        3
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // Dark standby spares add no steady-state capacity.
        if self.policy.runtime_protect() {
            return 8.0;
        }
        // Spares on diagonal pairs add up to 4 crossing channels.
        let extra = self
            .policy
            .reinforced_pairs()
            .iter()
            .filter(|&&(s, d)| {
                // Crossing pairs of the vertical bisection (0,3 | 1,2 split).
                let left = |c: u32| c == 0 || c == 3;
                left(s) != left(d)
            })
            .count();
        8.0 + extra as f64
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        assert!(cfg.vcs >= 4);
        let routers = (CLUSTERS * TILES) as usize;
        let mut b = NetworkBuilder::new(routers, 256, cfg);
        for r in 0..routers as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        let mut phot_port = vec![[PortId::MAX; TILES as usize]; routers];
        let mut transit_port = vec![[PortId::MAX; 4]; routers];
        build_cluster_waveguides(&mut b, CLUSTERS, &mut phot_port, &mut transit_port);
        let mut wtx = vec![[(RouterId::MAX, PortId::MAX); CLUSTERS as usize]; CLUSTERS as usize];
        let mut primary_cid = vec![[ChannelId::MAX; CLUSTERS as usize]; CLUSTERS as usize];
        for l in &self.alloc.links {
            let tx_router = l.src * TILES + l.tx.tile();
            let rx_router = l.dst * TILES + l.rx.tile();
            let class = LinkClass::Wireless { channel: l.channel, distance: l.distance };
            let (cid, op, _) =
                b.add_channel(tx_router, rx_router, latency::WIRELESS, ser::OWN_WIRELESS, class);
            wtx[l.src as usize][l.dst as usize] = (tx_router, op);
            primary_cid[l.src as usize][l.dst as usize] = cid;
        }
        // Spare channels on bands 13-16, carried by the idle D corners of
        // the reinforced pair's clusters.
        let mut spare = vec![[None; CLUSTERS as usize]; CLUSTERS as usize];
        for (i, &(s, d)) in self.policy.reinforced_pairs().iter().enumerate() {
            let l = self.alloc.link(s, d);
            let tx_router = s * TILES + D_TILE;
            let rx_router = d * TILES + D_TILE;
            let class = LinkClass::Wireless { channel: 13 + i as u8, distance: l.distance };
            let (_, op, _) =
                b.add_channel(tx_router, rx_router, latency::WIRELESS, ser::OWN_WIRELESS, class);
            spare[s as usize][d as usize] = Some(op);
        }
        for r in 0..routers as u32 {
            let is_corner = corner_index(r % TILES).is_some();
            b.set_power_radix(r, if is_corner { 20 } else { 19 });
        }
        let primaries = self
            .policy
            .reinforced_pairs()
            .iter()
            .map(|&(s, d)| (primary_cid[s as usize][d as usize], s, d))
            .collect();
        b.build(Box::new(ReconfigRouting {
            base: Own256Routing {
                vcs: cfg.vcs,
                phot_port,
                transit_port,
                wtx,
                placement: crate::own256::AntennaPlacement::Corners,
            },
            spare,
            failover: self.policy.primaries_failed(),
            protect: self.policy.runtime_protect(),
            primaries,
            failed: vec![[false; CLUSTERS as usize]; CLUSTERS as usize],
        }))
    }
}

/// Profile a finished simulation: per ordered cluster pair, the wireless
/// flit count; returns the four busiest pairs (for
/// [`ReconfigPolicy::Pairs`]).
pub fn profile_hot_pairs(net: &Network) -> Vec<(u32, u32)> {
    let alloc = ChannelAllocation::table_i();
    let mut loads: Vec<((u32, u32), u64)> = Vec::new();
    for (ch, &flits) in net.channels().iter().zip(&net.stats.channel_flits) {
        if let LinkClass::Wireless { channel, .. } = ch.class {
            if let Some(l) = alloc.links.iter().find(|l| l.channel == channel) {
                loads.push(((l.src, l.dst), flits));
            }
        }
    }
    loads.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    loads.into_iter().take(4).map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::{BernoulliInjector, TrafficPattern};

    #[test]
    fn policies_enumerate_pairs() {
        assert!(ReconfigPolicy::None.reinforced_pairs().is_empty());
        assert_eq!(ReconfigPolicy::Diagonal.reinforced_pairs().len(), 4);
        let p = ReconfigPolicy::Pairs(vec![(0, 1), (1, 0)]);
        assert_eq!(p.reinforced_pairs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "four spare bands")]
    fn more_than_four_pairs_rejected() {
        let _ = ReconfigPolicy::Pairs(vec![(0, 1); 5]).reinforced_pairs();
    }

    #[test]
    fn spare_channels_materialize_on_bands_13_16() {
        let net = Own256Reconfig::new(ReconfigPolicy::Diagonal).build(RouterConfig::default());
        let spares: Vec<u8> = net
            .channels()
            .iter()
            .filter_map(|c| match c.class {
                LinkClass::Wireless { channel, .. } if channel >= 13 => Some(channel),
                _ => None,
            })
            .collect();
        assert_eq!(spares.len(), 4);
        assert!(spares.iter().all(|&c| (13..=16).contains(&c)));
    }

    #[test]
    fn traffic_splits_between_primary_and_spare() {
        let mut net = Own256Reconfig::new(ReconfigPolicy::Diagonal).build(RouterConfig::default());
        // Saturating diagonal traffic: cluster 0 -> cluster 2 only.
        for t in 0..16u32 {
            for rep in 0..4 {
                let dst_tile = (t + rep) % 16;
                net.inject_packet(t * 4, 2 * 64 + dst_tile * 4 + 1, 2);
            }
        }
        assert!(net.drain(50_000));
        let (mut primary, mut spare) = (0u64, 0u64);
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                match channel {
                    3 => primary += f, // band 3 = 0 -> 2 diagonal primary
                    15 => spare += f,  // third spare = (0,2) in Diagonal order
                    _ => {}
                }
            }
        }
        assert!(primary > 0 && spare > 0, "primary {primary}, spare {spare}");
        // The parity split is roughly even.
        let ratio = primary as f64 / spare as f64;
        assert!((0.5..2.0).contains(&ratio), "split ratio {ratio}");
    }

    #[test]
    fn reconfig_improves_diagonal_saturation() {
        // Diagonal-heavy traffic: transpose-like cluster pattern where
        // clusters exchange with their diagonal counterpart.
        let run = |topo: &dyn Topology| -> u64 {
            let mut net = topo.build(RouterConfig::default());
            let mut inj = BernoulliInjector::new(0.05, 2, TrafficPattern::Transpose, 5);
            inj.drive(&mut net, 1_500);
            assert!(net.drain(300_000));
            net.now
        };
        let plain = run(&Own256Reconfig::new(ReconfigPolicy::None));
        let diag = run(&Own256Reconfig::new(ReconfigPolicy::Diagonal));
        assert!(diag <= plain, "spare diagonal channels must not slow delivery: {diag} vs {plain}");
    }

    #[test]
    fn profiling_finds_hot_pairs() {
        let mut net = Own256Reconfig::new(ReconfigPolicy::None).build(RouterConfig::default());
        // Hammer 1 -> 3 (and lightly 0 -> 1).
        for i in 0..40 {
            net.inject_packet(64 + (i % 64), 3 * 64 + (i % 64), 2);
        }
        net.inject_packet(0, 64, 2);
        assert!(net.drain(50_000));
        let hot = profile_hot_pairs(&net);
        assert_eq!(hot[0], (1, 3), "hottest pair must rank first: {hot:?}");
    }

    #[test]
    fn failover_carries_all_pair_traffic_on_spare() {
        // Primary channel (1,3) has failed; every 1->3 packet must ride
        // band 13 (the first spare) and none may touch band 2 (the
        // primary for 1->3).
        let topo = Own256Reconfig::new(ReconfigPolicy::Failover(vec![(1, 3)]));
        let mut net = topo.build(RouterConfig::default());
        for t in 0..16u32 {
            net.inject_packet(64 + t * 4, 3 * 64 + t * 4 + 1, 2);
        }
        assert!(net.drain(50_000));
        assert_eq!(net.stats.packets_delivered, 16);
        let mut by_band = std::collections::HashMap::new();
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                *by_band.entry(channel).or_insert(0u64) += f;
            }
        }
        assert_eq!(by_band.get(&2).copied().unwrap_or(0), 0, "dead primary must stay dark");
        assert_eq!(by_band.get(&13).copied().unwrap_or(0), 32, "all flits on the spare");
    }

    #[test]
    fn failover_preserves_connectivity_under_uniform_traffic() {
        use noc_traffic::{BernoulliInjector, TrafficPattern};
        // Two failed primaries covered by spares: the network stays fully
        // connected and delivers everything.
        let topo = Own256Reconfig::new(ReconfigPolicy::Failover(vec![(0, 2), (2, 0)]));
        let mut net = topo.build(RouterConfig::default());
        let mut inj = BernoulliInjector::new(0.03, 3, TrafficPattern::Uniform, 21);
        inj.drive(&mut net, 800);
        assert!(net.drain(300_000));
        assert_eq!(net.stats.packets_offered, net.stats.packets_delivered);
    }

    /// The `ChannelId` of the primary wireless channel carrying `band`.
    fn band_channel(net: &noc_core::Network, band: u8) -> noc_core::ChannelId {
        net.channels()
            .iter()
            .position(|c| matches!(c.class, LinkClass::Wireless { channel, .. } if channel == band))
            .expect("band not found") as noc_core::ChannelId
    }

    /// Per-band wireless flit counts of a finished run.
    fn flits_by_band(net: &noc_core::Network) -> std::collections::HashMap<u8, u64> {
        let mut by_band = std::collections::HashMap::new();
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                *by_band.entry(channel).or_insert(0u64) += f;
            }
        }
        by_band
    }

    #[test]
    fn protect_spares_stay_dark_without_faults() {
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let mut net = topo.build(RouterConfig::default());
        for t in 0..16u32 {
            net.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
        }
        assert!(net.drain(50_000));
        let by_band = flits_by_band(&net);
        assert_eq!(by_band.get(&13).copied().unwrap_or(0), 0, "standby spare must stay dark");
        assert_eq!(by_band.get(&3).copied().unwrap_or(0), 32, "primary carries everything");
    }

    #[test]
    fn protect_fails_over_to_spare_after_detection() {
        use noc_core::{FaultConfig, FaultEvent, FaultSchedule};
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let mut net = topo.build(RouterConfig::default());
        // Kill the 0 -> 2 primary (band 3) permanently at cycle 200.
        let primary = band_channel(&net, 3);
        net.attach_faults(FaultConfig {
            schedule: FaultSchedule::new()
                .with(FaultEvent::permanent(200, FaultTarget::Channel(primary))),
            detect_delay: 50,
            ..Default::default()
        });
        // Steady 0 -> 2 stream: one packet every 25 cycles for 2000 cycles.
        let mut sent = 0u64;
        for cycle in 0..2_000u64 {
            if cycle % 25 == 0 {
                let t = (sent % 16) as u32;
                net.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
                sent += 1;
            }
            net.step();
        }
        assert!(net.drain(50_000));
        assert_eq!(net.stats.failovers, 1, "one detected failover");
        assert_eq!(net.stats.first_failover_at, Some(250), "fault at 200 + 50 detect delay");
        let by_band = flits_by_band(&net);
        assert!(by_band.get(&13).copied().unwrap_or(0) > 0, "spare carries post-failover traffic");
        // Packets committed to the dead primary before detection exhaust
        // their retries and are dropped; everything after rides the spare.
        assert_eq!(
            net.stats.packets_delivered + net.stats.packets_dropped_corrupt,
            sent,
            "every packet is accounted for"
        );
        assert!(net.stats.packets_dropped_corrupt > 0, "pre-detection packets die on the primary");
        assert!(net.stats.delivered_fraction() < 1.0);
        assert!(
            net.stats.packets_delivered > net.stats.packets_dropped_corrupt,
            "most packets survive the failover"
        );
    }

    #[test]
    fn protect_switches_back_when_primary_recovers() {
        use noc_core::{FaultConfig, FaultEvent, FaultSchedule};
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let mut net = topo.build(RouterConfig::default());
        let primary = band_channel(&net, 3);
        // Transient outage: down at 100 for 300 cycles, detection 20.
        net.attach_faults(FaultConfig {
            schedule: FaultSchedule::new().with(FaultEvent::transient(
                100,
                FaultTarget::Channel(primary),
                300,
            )),
            detect_delay: 20,
            ..Default::default()
        });
        // Quiet network: let the fault fire, be detected, clear, and be
        // re-detected, then send fresh traffic — it must use the primary.
        while net.now < 500 {
            net.step();
        }
        assert_eq!(net.stats.failovers, 2, "failover out and back");
        let before = flits_by_band(&net).get(&3).copied().unwrap_or(0);
        for t in 0..16u32 {
            net.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
        }
        assert!(net.drain(50_000));
        let by_band = flits_by_band(&net);
        assert_eq!(by_band.get(&3).copied().unwrap_or(0) - before, 32, "traffic back on primary");
        assert_eq!(net.stats.packets_delivered, 16);
        assert_eq!(net.stats.delivered_fraction(), 1.0);
    }

    #[test]
    fn all_policies_drain_uniform_traffic() {
        for policy in [
            ReconfigPolicy::None,
            ReconfigPolicy::Diagonal,
            ReconfigPolicy::Pairs(vec![(0, 1), (2, 3)]),
            ReconfigPolicy::Failover(vec![(3, 1)]),
            ReconfigPolicy::Protect(vec![(0, 2), (2, 0)]),
        ] {
            let topo = Own256Reconfig::new(policy);
            let mut net = topo.build(RouterConfig::default());
            let mut inj = BernoulliInjector::new(0.04, 3, TrafficPattern::Uniform, 11);
            inj.drive(&mut net, 800);
            assert!(net.drain(200_000), "{} stuck", topo.name());
            assert_eq!(net.stats.packets_offered, net.stats.packets_delivered);
        }
    }
}
