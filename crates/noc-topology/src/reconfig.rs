//! Reconfiguration channels: OWN-256 with bands 13–16 in service.
//!
//! Table III reserves links 13–16 as "reconfiguration channels that could
//! adaptively be utilized to improve performance" (§IV). This module
//! implements that extension: the four spare transceiver pairs are assigned
//! to reinforce chosen cluster pairs, giving those pairs two parallel
//! wireless channels. Packets alternate deterministically between the
//! primary and spare channel (by source-tile parity), which halves the
//! per-channel load on the reinforced pairs.
//!
//! Two static policies are provided plus a profile-driven one:
//!
//! * [`ReconfigPolicy::Diagonal`] — reinforce the four diagonal (C2C)
//!   channels, the longest and most expensive links.
//! * [`ReconfigPolicy::Pairs`] — reinforce an explicit list of ordered
//!   cluster pairs (at most four), e.g. chosen from a profiling run.
//! * [`profile_hot_pairs`] — measure per-pair wireless traffic of a
//!   finished simulation and return the four busiest ordered pairs, closing
//!   the adaptive loop the paper sketches: profile → reassign → rerun.
//!
//! The spare channel of a reinforced pair rides the otherwise-idle **D
//! corner transceivers** (unused at 256 cores, §III-A), so reinforced
//! traffic gains a second independent path end to end: its own transit
//! waveguide into the D corner, its own wireless band, and the D corner's
//! egress at the destination — not merely a second frequency on the same
//! funnel.

use noc_core::{
    CoreId, LinkClass, Network, NetworkBuilder, PortId, RouteDecision, RouterConfig, RouterId,
    RoutingAlg,
};

use crate::channels::ChannelAllocation;
use crate::normalize::{latency, ser};
use crate::own256::{build_cluster_waveguides, corner_index, Own256Routing, CLUSTERS, TILES};
use crate::topology::Topology;

const CONC: u32 = 4;

/// How the four spare bands (13–16) are deployed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigPolicy {
    /// Spares stay dark (plain OWN-256).
    None,
    /// Reinforce the four diagonal (C2C) channels.
    Diagonal,
    /// Reinforce up to four explicit ordered cluster pairs.
    Pairs(Vec<(u32, u32)>),
    /// Fault tolerance: the listed pairs' *primary* transceivers have
    /// failed; all of their traffic fails over to the spare band on the D
    /// corners. Up to four failed pairs can be covered.
    Failover(Vec<(u32, u32)>),
}

impl ReconfigPolicy {
    /// The ordered cluster pairs that receive a spare channel.
    pub fn reinforced_pairs(&self) -> Vec<(u32, u32)> {
        match self {
            ReconfigPolicy::None => Vec::new(),
            ReconfigPolicy::Diagonal => vec![(3, 1), (1, 3), (0, 2), (2, 0)],
            ReconfigPolicy::Pairs(ps) | ReconfigPolicy::Failover(ps) => {
                assert!(ps.len() <= 4, "only four spare bands exist");
                ps.clone()
            }
        }
    }

    /// Whether the reinforced pairs' primaries are out of service.
    pub fn primaries_failed(&self) -> bool {
        matches!(self, ReconfigPolicy::Failover(_))
    }
}

/// OWN-256 with the reconfiguration bands deployed under a policy.
#[derive(Debug, Clone)]
pub struct Own256Reconfig {
    alloc: ChannelAllocation,
    policy: ReconfigPolicy,
}

impl Own256Reconfig {
    /// OWN-256 with the given spare-band policy.
    pub fn new(policy: ReconfigPolicy) -> Self {
        Own256Reconfig { alloc: ChannelAllocation::table_i(), policy }
    }

    /// The active policy.
    pub fn policy(&self) -> &ReconfigPolicy {
        &self.policy
    }
}

struct ReconfigRouting {
    base: Own256Routing,
    /// `spare[c][d]` — spare wireless out port at the **D corner** of
    /// cluster `c` for the reinforced pair c → d.
    spare: Vec<[Option<PortId>; CLUSTERS as usize]>,
    /// Failover mode: route *all* reinforced-pair traffic via the spare
    /// (the primary transceiver is dead).
    failover: bool,
}

/// Tile-local index of the D corner.
const D_TILE: u32 = 15;
/// Corner index of D in the transit-waveguide table.
const D_CORNER: usize = 3;

impl RoutingAlg for ReconfigRouting {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        let (c, t) = (router / TILES, router % TILES);
        let cd = (dr / TILES) % CLUSTERS;
        if dr != router && c != cd {
            if let Some(spare_port) = self.spare[c as usize][cd as usize] {
                // Load-balance mode: split by destination-tile parity.
                // Failover mode: the primary is dead — everything takes
                // the spare path via the D corner.
                if self.failover || (dr % TILES) % 2 == 1 {
                    if t == D_TILE {
                        // At the D corner: the spare wireless hop.
                        return RouteDecision::any_vc(spare_port, self.base.vcs);
                    }
                    // Photonic transit hop toward the D corner.
                    let p = self.base.transit_port[router as usize][D_CORNER];
                    return RouteDecision::any_vc(p, self.base.vcs);
                }
            }
        }
        self.base.route(router, dst)
    }
}

impl Topology for Own256Reconfig {
    fn name(&self) -> String {
        match &self.policy {
            ReconfigPolicy::None => "OWN-256+spares-off".to_string(),
            ReconfigPolicy::Diagonal => "OWN-256+diag-spares".to_string(),
            ReconfigPolicy::Pairs(_) => "OWN-256+profiled-spares".to_string(),
            ReconfigPolicy::Failover(_) => "OWN-256+failover".to_string(),
        }
    }

    fn num_cores(&self) -> u32 {
        256
    }

    fn diameter_hops(&self) -> u32 {
        3
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // Spares on diagonal pairs add up to 4 crossing channels.
        let extra = self
            .policy
            .reinforced_pairs()
            .iter()
            .filter(|&&(s, d)| {
                // Crossing pairs of the vertical bisection (0,3 | 1,2 split).
                let left = |c: u32| c == 0 || c == 3;
                left(s) != left(d)
            })
            .count();
        8.0 + extra as f64
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        assert!(cfg.vcs >= 4);
        let routers = (CLUSTERS * TILES) as usize;
        let mut b = NetworkBuilder::new(routers, 256, cfg);
        for r in 0..routers as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        let mut phot_port = vec![[PortId::MAX; TILES as usize]; routers];
        let mut transit_port = vec![[PortId::MAX; 4]; routers];
        build_cluster_waveguides(&mut b, CLUSTERS, &mut phot_port, &mut transit_port);
        let mut wtx = vec![[(RouterId::MAX, PortId::MAX); CLUSTERS as usize]; CLUSTERS as usize];
        for l in &self.alloc.links {
            let tx_router = l.src * TILES + l.tx.tile();
            let rx_router = l.dst * TILES + l.rx.tile();
            let class = LinkClass::Wireless { channel: l.channel, distance: l.distance };
            let (_, op, _) =
                b.add_channel(tx_router, rx_router, latency::WIRELESS, ser::OWN_WIRELESS, class);
            wtx[l.src as usize][l.dst as usize] = (tx_router, op);
        }
        // Spare channels on bands 13-16, carried by the idle D corners of
        // the reinforced pair's clusters.
        let mut spare = vec![[None; CLUSTERS as usize]; CLUSTERS as usize];
        for (i, &(s, d)) in self.policy.reinforced_pairs().iter().enumerate() {
            let l = self.alloc.link(s, d);
            let tx_router = s * TILES + D_TILE;
            let rx_router = d * TILES + D_TILE;
            let class = LinkClass::Wireless { channel: 13 + i as u8, distance: l.distance };
            let (_, op, _) =
                b.add_channel(tx_router, rx_router, latency::WIRELESS, ser::OWN_WIRELESS, class);
            spare[s as usize][d as usize] = Some(op);
        }
        for r in 0..routers as u32 {
            let is_corner = corner_index(r % TILES).is_some();
            b.set_power_radix(r, if is_corner { 20 } else { 19 });
        }
        b.build(Box::new(ReconfigRouting {
            base: Own256Routing {
                vcs: cfg.vcs,
                phot_port,
                transit_port,
                wtx,
                placement: crate::own256::AntennaPlacement::Corners,
            },
            spare,
            failover: self.policy.primaries_failed(),
        }))
    }
}

/// Profile a finished simulation: per ordered cluster pair, the wireless
/// flit count; returns the four busiest pairs (for
/// [`ReconfigPolicy::Pairs`]).
pub fn profile_hot_pairs(net: &Network) -> Vec<(u32, u32)> {
    let alloc = ChannelAllocation::table_i();
    let mut loads: Vec<((u32, u32), u64)> = Vec::new();
    for (ch, &flits) in net.channels().iter().zip(&net.stats.channel_flits) {
        if let LinkClass::Wireless { channel, .. } = ch.class {
            if let Some(l) = alloc.links.iter().find(|l| l.channel == channel) {
                loads.push(((l.src, l.dst), flits));
            }
        }
    }
    loads.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    loads.into_iter().take(4).map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::{BernoulliInjector, TrafficPattern};

    #[test]
    fn policies_enumerate_pairs() {
        assert!(ReconfigPolicy::None.reinforced_pairs().is_empty());
        assert_eq!(ReconfigPolicy::Diagonal.reinforced_pairs().len(), 4);
        let p = ReconfigPolicy::Pairs(vec![(0, 1), (1, 0)]);
        assert_eq!(p.reinforced_pairs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "four spare bands")]
    fn more_than_four_pairs_rejected() {
        let _ = ReconfigPolicy::Pairs(vec![(0, 1); 5]).reinforced_pairs();
    }

    #[test]
    fn spare_channels_materialize_on_bands_13_16() {
        let net = Own256Reconfig::new(ReconfigPolicy::Diagonal).build(RouterConfig::default());
        let spares: Vec<u8> = net
            .channels()
            .iter()
            .filter_map(|c| match c.class {
                LinkClass::Wireless { channel, .. } if channel >= 13 => Some(channel),
                _ => None,
            })
            .collect();
        assert_eq!(spares.len(), 4);
        assert!(spares.iter().all(|&c| (13..=16).contains(&c)));
    }

    #[test]
    fn traffic_splits_between_primary_and_spare() {
        let mut net = Own256Reconfig::new(ReconfigPolicy::Diagonal).build(RouterConfig::default());
        // Saturating diagonal traffic: cluster 0 -> cluster 2 only.
        for t in 0..16u32 {
            for rep in 0..4 {
                let dst_tile = (t + rep) % 16;
                net.inject_packet(t * 4, 2 * 64 + dst_tile * 4 + 1, 2);
            }
        }
        assert!(net.drain(50_000));
        let (mut primary, mut spare) = (0u64, 0u64);
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                match channel {
                    3 => primary += f, // band 3 = 0 -> 2 diagonal primary
                    15 => spare += f,  // third spare = (0,2) in Diagonal order
                    _ => {}
                }
            }
        }
        assert!(primary > 0 && spare > 0, "primary {primary}, spare {spare}");
        // The parity split is roughly even.
        let ratio = primary as f64 / spare as f64;
        assert!((0.5..2.0).contains(&ratio), "split ratio {ratio}");
    }

    #[test]
    fn reconfig_improves_diagonal_saturation() {
        // Diagonal-heavy traffic: transpose-like cluster pattern where
        // clusters exchange with their diagonal counterpart.
        let run = |topo: &dyn Topology| -> u64 {
            let mut net = topo.build(RouterConfig::default());
            let mut rng_seed = 5;
            let mut inj = BernoulliInjector::new(0.05, 2, TrafficPattern::Transpose, rng_seed);
            rng_seed += 1;
            let _ = rng_seed;
            inj.drive(&mut net, 1_500);
            assert!(net.drain(300_000));
            net.now
        };
        let plain = run(&Own256Reconfig::new(ReconfigPolicy::None));
        let diag = run(&Own256Reconfig::new(ReconfigPolicy::Diagonal));
        assert!(diag <= plain, "spare diagonal channels must not slow delivery: {diag} vs {plain}");
    }

    #[test]
    fn profiling_finds_hot_pairs() {
        let mut net = Own256Reconfig::new(ReconfigPolicy::None).build(RouterConfig::default());
        // Hammer 1 -> 3 (and lightly 0 -> 1).
        for i in 0..40 {
            net.inject_packet(64 + (i % 64), 3 * 64 + (i % 64), 2);
        }
        net.inject_packet(0, 64, 2);
        assert!(net.drain(50_000));
        let hot = profile_hot_pairs(&net);
        assert_eq!(hot[0], (1, 3), "hottest pair must rank first: {hot:?}");
    }

    #[test]
    fn failover_carries_all_pair_traffic_on_spare() {
        // Primary channel (1,3) has failed; every 1->3 packet must ride
        // band 13 (the first spare) and none may touch band 2 (the
        // primary for 1->3).
        let topo = Own256Reconfig::new(ReconfigPolicy::Failover(vec![(1, 3)]));
        let mut net = topo.build(RouterConfig::default());
        for t in 0..16u32 {
            net.inject_packet(64 + t * 4, 3 * 64 + t * 4 + 1, 2);
        }
        assert!(net.drain(50_000));
        assert_eq!(net.stats.packets_delivered, 16);
        let mut by_band = std::collections::HashMap::new();
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                *by_band.entry(channel).or_insert(0u64) += f;
            }
        }
        assert_eq!(by_band.get(&2).copied().unwrap_or(0), 0, "dead primary must stay dark");
        assert_eq!(by_band.get(&13).copied().unwrap_or(0), 32, "all flits on the spare");
    }

    #[test]
    fn failover_preserves_connectivity_under_uniform_traffic() {
        use noc_traffic::{BernoulliInjector, TrafficPattern};
        // Two failed primaries covered by spares: the network stays fully
        // connected and delivers everything.
        let topo = Own256Reconfig::new(ReconfigPolicy::Failover(vec![(0, 2), (2, 0)]));
        let mut net = topo.build(RouterConfig::default());
        let mut inj = BernoulliInjector::new(0.03, 3, TrafficPattern::Uniform, 21);
        inj.drive(&mut net, 800);
        assert!(net.drain(300_000));
        assert_eq!(net.stats.packets_offered, net.stats.packets_delivered);
    }

    #[test]
    fn all_policies_drain_uniform_traffic() {
        for policy in [
            ReconfigPolicy::None,
            ReconfigPolicy::Diagonal,
            ReconfigPolicy::Pairs(vec![(0, 1), (2, 3)]),
            ReconfigPolicy::Failover(vec![(3, 1)]),
        ] {
            let topo = Own256Reconfig::new(policy);
            let mut net = topo.build(RouterConfig::default());
            let mut inj = BernoulliInjector::new(0.04, 3, TrafficPattern::Uniform, 11);
            inj.drive(&mut net, 800);
            assert!(net.drain(200_000), "{} stuck", topo.name());
            assert_eq!(net.stats.packets_offered, net.stats.packets_delivered);
        }
    }
}
