//! Reconfiguration channels: OWN-256 with bands 13–16 in service.
//!
//! Table III reserves links 13–16 as "reconfiguration channels that could
//! adaptively be utilized to improve performance" (§IV). This module
//! implements that extension: the four spare transceiver pairs are assigned
//! to reinforce chosen cluster pairs, giving those pairs two parallel
//! wireless channels. Packets alternate deterministically between the
//! primary and spare channel (by source-tile parity), which halves the
//! per-channel load on the reinforced pairs.
//!
//! Two static policies are provided plus a profile-driven one and a
//! runtime-protection one:
//!
//! * [`ReconfigPolicy::Diagonal`] — reinforce the four diagonal (C2C)
//!   channels, the longest and most expensive links.
//! * [`ReconfigPolicy::Pairs`] — reinforce an explicit list of ordered
//!   cluster pairs (at most four), e.g. chosen from a profiling run.
//! * [`ReconfigPolicy::Protect`] — hold the spare of each listed pair
//!   **dark** until the engine's fault-detection machinery reports the
//!   pair's primary transceiver dead (see `noc_core::fault`); the pair's
//!   traffic then fails over onto the spare at runtime, and back again if
//!   the primary recovers.
//! * [`profile_hot_pairs`] — measure per-pair wireless traffic of a
//!   finished simulation and return the four busiest ordered pairs, closing
//!   the adaptive loop the paper sketches: profile → reassign → rerun.
//! * [`ReconfigPolicy::Adaptive`] — close that loop **online**: every
//!   ordered cluster pair gets a dark spare channel on the D corners, and a
//!   controller re-ranks pairs by primary-channel utilization (the engine's
//!   [`noc_core::LinkSensors`] EWMAs) every `epoch` cycles, steering the
//!   four spare transceiver slots onto the hottest pairs. A slot dwells at
//!   least `hysteresis` cycles before it can be re-aimed (no flapping), and
//!   an active fault on a pair's primary preempts bandwidth use of a slot —
//!   protection always wins the arbitration for a spare transceiver.
//!
//! The spare channel of a reinforced pair rides the otherwise-idle **D
//! corner transceivers** (unused at 256 cores, §III-A), so reinforced
//! traffic gains a second independent path end to end: its own transit
//! waveguide into the D corner, its own wireless band, and the D corner's
//! egress at the destination — not merely a second frequency on the same
//! funnel.

use noc_core::ids::Cycle;
use noc_core::{
    ChannelId, CoreId, FaultTarget, LinkClass, Network, NetworkBuilder, PortId, RouteDecision,
    RouterConfig, RouterId, RoutingAlg, SteerAction,
};

use crate::channels::ChannelAllocation;
use crate::normalize::{latency, ser};
use crate::own256::{build_cluster_waveguides, corner_index, Own256Routing, CLUSTERS, TILES};
use crate::topology::Topology;

const CONC: u32 = 4;

/// How the four spare bands (13–16) are deployed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigPolicy {
    /// Spares stay dark (plain OWN-256).
    None,
    /// Reinforce the four diagonal (C2C) channels.
    Diagonal,
    /// Reinforce up to four explicit ordered cluster pairs.
    Pairs(Vec<(u32, u32)>),
    /// Fault tolerance: the listed pairs' *primary* transceivers have
    /// failed; all of their traffic fails over to the spare band on the D
    /// corners. Up to four failed pairs can be covered.
    Failover(Vec<(u32, u32)>),
    /// Runtime fault tolerance: the listed pairs get a dark standby spare.
    /// Traffic stays on the primary until a scheduled fault on it is
    /// *detected* (`RoutingAlg::fault_notice`, one `detect_delay` after the
    /// fault fires), switches to the spare band, and switches back when the
    /// primary's recovery is detected. Up to four pairs can be protected.
    Protect(Vec<(u32, u32)>),
    /// Closed-loop utilization-driven steering. Every ordered cluster pair
    /// gets a dark spare channel riding the D corners; every `epoch` cycles
    /// a controller ranks pairs by their primary channel's utilization EWMA
    /// and points the four spare transceiver slots at the hottest ones.
    /// A slot must dwell `hysteresis` cycles before it can be re-aimed,
    /// and a detected fault on a pair's primary preempts bandwidth use of
    /// a slot (protection wins the spare, as under `Protect`).
    Adaptive {
        /// Re-ranking period in cycles (must be >= 1).
        epoch: u64,
        /// Minimum dwell of a bandwidth slot assignment, in cycles.
        hysteresis: u64,
    },
}

impl ReconfigPolicy {
    /// The ordered cluster pairs that receive a statically wired spare
    /// channel. Empty for [`ReconfigPolicy::Adaptive`], which wires a dark
    /// spare to *every* ordered pair and assigns the four transceiver
    /// slots at runtime instead.
    pub fn reinforced_pairs(&self) -> Vec<(u32, u32)> {
        match self {
            ReconfigPolicy::None | ReconfigPolicy::Adaptive { .. } => Vec::new(),
            ReconfigPolicy::Diagonal => vec![(3, 1), (1, 3), (0, 2), (2, 0)],
            ReconfigPolicy::Pairs(ps)
            | ReconfigPolicy::Failover(ps)
            | ReconfigPolicy::Protect(ps) => {
                assert!(ps.len() <= 4, "only four spare bands exist");
                ps.clone()
            }
        }
    }

    /// `(epoch, hysteresis)` of an adaptive policy, `None` otherwise.
    pub fn adaptive_params(&self) -> Option<(u64, u64)> {
        match *self {
            ReconfigPolicy::Adaptive { epoch, hysteresis } => Some((epoch, hysteresis)),
            _ => None,
        }
    }

    /// Whether the reinforced pairs' primaries are out of service.
    pub fn primaries_failed(&self) -> bool {
        matches!(self, ReconfigPolicy::Failover(_))
    }

    /// Whether the spares are dark standby awaiting runtime fault notices.
    pub fn runtime_protect(&self) -> bool {
        matches!(self, ReconfigPolicy::Protect(_))
    }
}

/// OWN-256 with the reconfiguration bands deployed under a policy.
#[derive(Debug, Clone)]
pub struct Own256Reconfig {
    alloc: ChannelAllocation,
    policy: ReconfigPolicy,
}

impl Own256Reconfig {
    /// OWN-256 with the given spare-band policy.
    pub fn new(policy: ReconfigPolicy) -> Self {
        if let ReconfigPolicy::Adaptive { epoch, .. } = policy {
            assert!(epoch >= 1, "adaptive reconfig epoch must be >= 1 cycle");
        }
        Own256Reconfig { alloc: ChannelAllocation::table_i(), policy }
    }

    /// The active policy.
    pub fn policy(&self) -> &ReconfigPolicy {
        &self.policy
    }
}

/// Runtime state of the adaptive spare-band controller.
///
/// Four *slots* model the four physical spare transceiver pairs (bands
/// 13–16 — slot `i` transmits on band `13 + i`). A slot either reinforces
/// a hot pair for bandwidth (`protect == false`, traffic split by parity
/// with the primary) or covers a failed primary (`protect == true`, all of
/// the pair's traffic). Only integer state is kept so the controller
/// checkpoints bit-identically through `save_state`/`load_state`.
struct AdaptiveCtl {
    /// Re-ranking period in cycles.
    epoch: u64,
    /// Minimum dwell of a bandwidth slot assignment, in cycles.
    hysteresis: u64,
    /// Every ordered cluster pair `(s, d)`, in enumeration order.
    pairs: Vec<(u32, u32)>,
    /// Primary wireless channel of each pair (the utilization signal).
    primary_cid: Vec<ChannelId>,
    /// Dark spare channel of each pair, on the D corners.
    spare_cid: Vec<ChannelId>,
    /// D-corner out port feeding each pair's spare channel.
    spare_port: Vec<PortId>,
    /// Slot assignments: `(pair index, protect)`.
    slots: [Option<(usize, bool)>; 4],
    /// Cycle each slot's current bandwidth assignment was made.
    assigned_at: [Cycle; 4],
    /// Total slot reassignments performed (flap diagnostics).
    reassignments: u64,
    /// Steer actions awaiting pickup by the next `util_tick`.
    pending: Vec<SteerAction>,
}

impl AdaptiveCtl {
    fn pair_index(&self, s: u32, d: u32) -> usize {
        self.pairs.iter().position(|&p| p == (s, d)).expect("unknown cluster pair")
    }

    fn push_steer(&mut self, slot: usize, pair: usize, active: bool, protect: bool) {
        self.pending.push(SteerAction {
            band: 13 + slot as u8,
            channel: self.spare_cid[pair],
            active,
            protect,
        });
    }
}

struct ReconfigRouting {
    base: Own256Routing,
    /// `spare[c][d]` — spare wireless out port at the **D corner** of
    /// cluster `c` for the reinforced pair c → d.
    spare: Vec<[Option<PortId>; CLUSTERS as usize]>,
    /// Failover mode: route *all* reinforced-pair traffic via the spare
    /// (the primary transceiver is dead).
    failover: bool,
    /// Runtime-protection mode: spares are dark standby, activated per
    /// pair by `fault_notice` when the primary's failure is detected.
    protect: bool,
    /// Primary wireless channel of each protected pair, `(channel, s, d)`.
    primaries: Vec<(ChannelId, u32, u32)>,
    /// `failed[c][d]` — the pair's primary is currently known-dead.
    failed: Vec<[bool; CLUSTERS as usize]>,
    /// Utilization-driven slot controller ([`ReconfigPolicy::Adaptive`]).
    adaptive: Option<AdaptiveCtl>,
}

impl ReconfigRouting {
    /// Recompute the `spare` routing table from the adaptive slots.
    fn rebuild_spare_table(&mut self) {
        let ctl = self.adaptive.as_ref().expect("adaptive controller");
        for row in &mut self.spare {
            *row = [None; CLUSTERS as usize];
        }
        for o in &ctl.slots {
            if let Some((p, _)) = *o {
                let (s, d) = ctl.pairs[p];
                self.spare[s as usize][d as usize] = Some(ctl.spare_port[p]);
            }
        }
    }

    /// Adaptive fault arbitration: an active fault on a pair's primary
    /// preempts bandwidth use of a spare slot; recovery frees it again.
    fn adaptive_fault(&mut self, s: u32, d: u32, failed: bool) {
        let ctl = self.adaptive.as_mut().expect("adaptive controller");
        let p = ctl.pair_index(s, d);
        if failed {
            if let Some(i) = ctl.slots.iter().position(|o| matches!(o, Some((q, _)) if *q == p)) {
                // The pair already holds a slot: escalate it to protection.
                ctl.slots[i] = Some((p, true));
                ctl.push_steer(i, p, true, true);
            } else {
                // Take a free slot, else preempt the stalest bandwidth
                // slot. If all four slots protect other faults, the pair
                // keeps its dead primary (drops are counted, not silent).
                let victim = ctl.slots.iter().position(|o| o.is_none()).or_else(|| {
                    (0..ctl.slots.len())
                        .filter(|&i| matches!(ctl.slots[i], Some((_, false))))
                        .min_by_key(|&i| (ctl.assigned_at[i], i))
                });
                if let Some(i) = victim {
                    if let Some((q, false)) = ctl.slots[i] {
                        ctl.push_steer(i, q, false, false);
                    }
                    ctl.slots[i] = Some((p, true));
                    ctl.assigned_at[i] = 0;
                    ctl.reassignments += 1;
                    ctl.push_steer(i, p, true, true);
                }
            }
        } else if let Some(i) =
            ctl.slots.iter().position(|o| matches!(o, Some((q, true)) if *q == p))
        {
            // Recovery detected: release the protection slot; the next
            // epoch may re-earn it for bandwidth.
            ctl.slots[i] = None;
            ctl.assigned_at[i] = 0;
            ctl.push_steer(i, p, false, true);
        }
        self.rebuild_spare_table();
    }
}

/// Tile-local index of the D corner.
const D_TILE: u32 = 15;
/// Corner index of D in the transit-waveguide table.
const D_CORNER: usize = 3;

impl RoutingAlg for ReconfigRouting {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        let (c, t) = (router / TILES, router % TILES);
        let cd = (dr / TILES) % CLUSTERS;
        if dr != router && c != cd {
            if let Some(spare_port) = self.spare[c as usize][cd as usize] {
                // Failover mode: the primary is dead — everything takes
                // the spare path via the D corner. A detected fault
                // (Protect standby or an adaptive protection slot) does
                // the same. Protect pairs otherwise stay on the primary;
                // load-balance assignments split by destination-tile
                // parity.
                let take_spare = if self.failover || self.failed[c as usize][cd as usize] {
                    true
                } else if self.protect {
                    false
                } else {
                    (dr % TILES) % 2 == 1
                };
                if take_spare {
                    if t == D_TILE {
                        // At the D corner: the spare wireless hop.
                        return RouteDecision::any_vc(spare_port, self.base.vcs);
                    }
                    // Photonic transit hop toward the D corner.
                    let p = self.base.transit_port[router as usize][D_CORNER];
                    return RouteDecision::any_vc(p, self.base.vcs);
                }
            }
        }
        self.base.route(router, dst)
    }

    fn fault_notice(&mut self, target: FaultTarget, up: bool) -> bool {
        if !self.protect && self.adaptive.is_none() {
            return false;
        }
        let FaultTarget::Channel(ch) = target else { return false };
        let Some(&(_, s, d)) = self.primaries.iter().find(|&&(c, _, _)| c == ch) else {
            return false;
        };
        let slot = &mut self.failed[s as usize][d as usize];
        let want = !up;
        if *slot == want {
            return false;
        }
        *slot = want;
        if self.adaptive.is_some() {
            self.adaptive_fault(s, d, want);
        }
        true
    }

    fn sensor_window(&self) -> Option<u32> {
        self.adaptive.as_ref().map(|ctl| {
            let w = (ctl.epoch / 4).max(64);
            w.min(u64::from(u32::MAX)) as u32
        })
    }

    fn util_tick(&mut self, now: Cycle, chan_util: Option<&[u32]>) -> Vec<SteerAction> {
        // Destructured so the closure over `failed` does not conflict with
        // the mutable borrow of the controller.
        let ReconfigRouting { adaptive, failed, .. } = self;
        let Some(ctl) = adaptive.as_mut() else { return Vec::new() };
        let mut out = std::mem::take(&mut ctl.pending);
        let Some(util) = chan_util else { return out };
        if now == 0 || !now.is_multiple_of(ctl.epoch) {
            return out;
        }
        // Rank live pairs by primary-channel utilization, hottest first
        // (pair index breaks ties). Idle pairs never earn a slot; failed
        // pairs are covered by protection slots, not ranked here.
        let mut ranked: Vec<usize> = (0..ctl.pairs.len())
            .filter(|&p| {
                let (s, d) = ctl.pairs[p];
                !failed[s as usize][d as usize] && util[ctl.primary_cid[p] as usize] > 0
            })
            .collect();
        ranked.sort_by_key(|&p| (std::cmp::Reverse(util[ctl.primary_cid[p] as usize]), p));
        // The pairs that deserve the slots not pinned by protection.
        let capacity = ctl.slots.iter().filter(|o| !matches!(o, Some((_, true)))).count();
        let desired: Vec<usize> = ranked.iter().copied().take(capacity).collect();
        let mut changed = false;
        // Release bandwidth slots that fell out of the ranking, but only
        // after they have dwelled a full hysteresis interval — a slot is
        // never re-aimed twice within one window.
        for i in 0..ctl.slots.len() {
            if let Some((p, false)) = ctl.slots[i] {
                if !desired.contains(&p) && now - ctl.assigned_at[i] >= ctl.hysteresis {
                    ctl.slots[i] = None;
                    ctl.push_steer(i, p, false, false);
                    changed = true;
                }
            }
        }
        // Aim free slots at the hottest pairs not already served.
        let in_slot: Vec<usize> = ctl.slots.iter().flatten().map(|&(p, _)| p).collect();
        let mut queue = desired.iter().copied().filter(|p| !in_slot.contains(p));
        for i in 0..ctl.slots.len() {
            if ctl.slots[i].is_none() {
                if let Some(p) = queue.next() {
                    ctl.slots[i] = Some((p, false));
                    ctl.assigned_at[i] = now;
                    ctl.reassignments += 1;
                    ctl.push_steer(i, p, true, false);
                    changed = true;
                }
            }
        }
        out.append(&mut std::mem::take(&mut ctl.pending));
        if changed {
            self.rebuild_spare_table();
        }
        out
    }

    fn save_state(&self) -> Vec<u64> {
        let mut w = Vec::new();
        for row in &self.failed {
            for &f in row {
                w.push(u64::from(f));
            }
        }
        if let Some(ctl) = &self.adaptive {
            debug_assert!(ctl.pending.is_empty(), "steer actions must drain every cycle");
            for o in &ctl.slots {
                w.push(match *o {
                    None => u64::MAX,
                    Some((p, protect)) => p as u64 | (u64::from(protect) << 32),
                });
            }
            w.extend(ctl.assigned_at);
            w.push(ctl.reassignments);
        }
        w
    }

    fn load_state(&mut self, state: &[u64]) {
        let n = CLUSTERS as usize;
        let expect = n * n + if self.adaptive.is_some() { 9 } else { 0 };
        assert_eq!(state.len(), expect, "reconfig routing state has the wrong shape");
        let mut it = state.iter().copied();
        for row in &mut self.failed {
            for f in row.iter_mut() {
                *f = it.next().unwrap() != 0;
            }
        }
        if let Some(ctl) = self.adaptive.as_mut() {
            for o in ctl.slots.iter_mut() {
                let word = it.next().unwrap();
                *o = if word == u64::MAX {
                    None
                } else {
                    let p = (word & 0xffff_ffff) as usize;
                    assert!(p < ctl.pairs.len(), "slot pair index out of range");
                    Some((p, (word >> 32) != 0))
                };
            }
            for a in ctl.assigned_at.iter_mut() {
                *a = it.next().unwrap();
            }
            ctl.reassignments = it.next().unwrap();
            ctl.pending.clear();
            self.rebuild_spare_table();
        }
    }
}

impl Topology for Own256Reconfig {
    fn name(&self) -> String {
        match &self.policy {
            ReconfigPolicy::None => "OWN-256+spares-off".to_string(),
            ReconfigPolicy::Diagonal => "OWN-256+diag-spares".to_string(),
            ReconfigPolicy::Pairs(_) => "OWN-256+profiled-spares".to_string(),
            ReconfigPolicy::Failover(_) => "OWN-256+failover".to_string(),
            ReconfigPolicy::Protect(_) => "OWN-256+protect".to_string(),
            // Parameters are part of the name so checkpoint validation
            // refuses to resume under a different controller setting.
            ReconfigPolicy::Adaptive { epoch, hysteresis } => {
                format!("OWN-256+adaptive:{epoch}:{hysteresis}")
            }
        }
    }

    fn num_cores(&self) -> u32 {
        256
    }

    fn diameter_hops(&self) -> u32 {
        3
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // Dark standby spares add no steady-state capacity; adaptive
        // assignments are transient, so the static figure stays baseline.
        if self.policy.runtime_protect() || self.policy.adaptive_params().is_some() {
            return 8.0;
        }
        // Spares on diagonal pairs add up to 4 crossing channels.
        let extra = self
            .policy
            .reinforced_pairs()
            .iter()
            .filter(|&&(s, d)| {
                // Crossing pairs of the vertical bisection (0,3 | 1,2 split).
                let left = |c: u32| c == 0 || c == 3;
                left(s) != left(d)
            })
            .count();
        8.0 + extra as f64
    }

    fn num_clusters(&self) -> usize {
        CLUSTERS as usize
    }

    fn cluster_of(&self, router: u32) -> usize {
        (router / TILES) as usize
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        assert!(cfg.vcs >= 4);
        let routers = (CLUSTERS * TILES) as usize;
        let mut b = NetworkBuilder::new(routers, 256, cfg);
        for r in 0..routers as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        let mut phot_port = vec![[PortId::MAX; TILES as usize]; routers];
        let mut transit_port = vec![[PortId::MAX; 4]; routers];
        build_cluster_waveguides(&mut b, CLUSTERS, &mut phot_port, &mut transit_port);
        let mut wtx = vec![[(RouterId::MAX, PortId::MAX); CLUSTERS as usize]; CLUSTERS as usize];
        let mut primary_cid = vec![[ChannelId::MAX; CLUSTERS as usize]; CLUSTERS as usize];
        for l in &self.alloc.links {
            let tx_router = l.src * TILES + l.tx.tile();
            let rx_router = l.dst * TILES + l.rx.tile();
            let class = LinkClass::Wireless { channel: l.channel, distance: l.distance };
            let (cid, op, _) =
                b.add_channel(tx_router, rx_router, latency::WIRELESS, ser::OWN_WIRELESS, class);
            wtx[l.src as usize][l.dst as usize] = (tx_router, op);
            primary_cid[l.src as usize][l.dst as usize] = cid;
        }
        // Spare channels on bands 13-16, carried by the idle D corners of
        // the reinforced pair's clusters.
        let mut spare = vec![[None; CLUSTERS as usize]; CLUSTERS as usize];
        for (i, &(s, d)) in self.policy.reinforced_pairs().iter().enumerate() {
            let l = self.alloc.link(s, d);
            let tx_router = s * TILES + D_TILE;
            let rx_router = d * TILES + D_TILE;
            let class = LinkClass::Wireless { channel: 13 + i as u8, distance: l.distance };
            let (_, op, _) =
                b.add_channel(tx_router, rx_router, latency::WIRELESS, ser::OWN_WIRELESS, class);
            spare[s as usize][d as usize] = Some(op);
        }
        // Adaptive: a dark spare channel for *every* ordered pair; the
        // controller aims the four physical slots at runtime. The static
        // band label cycles 13-16 per transceiver site; the label reported
        // in steer events is the slot's (13 + slot index).
        let adaptive = self.policy.adaptive_params().map(|(epoch, hysteresis)| {
            let mut pairs = Vec::new();
            let mut p_cid = Vec::new();
            let mut spare_cid = Vec::new();
            let mut spare_port = Vec::new();
            for s in 0..CLUSTERS {
                for d in 0..CLUSTERS {
                    if s == d {
                        continue;
                    }
                    let l = self.alloc.link(s, d);
                    let class = LinkClass::Wireless {
                        channel: 13 + (pairs.len() % 4) as u8,
                        distance: l.distance,
                    };
                    let (cid, op, _) = b.add_channel(
                        s * TILES + D_TILE,
                        d * TILES + D_TILE,
                        latency::WIRELESS,
                        ser::OWN_WIRELESS,
                        class,
                    );
                    pairs.push((s, d));
                    p_cid.push(primary_cid[s as usize][d as usize]);
                    spare_cid.push(cid);
                    spare_port.push(op);
                }
            }
            AdaptiveCtl {
                epoch,
                hysteresis,
                pairs,
                primary_cid: p_cid,
                spare_cid,
                spare_port,
                slots: [None; 4],
                assigned_at: [0; 4],
                reassignments: 0,
                pending: Vec::new(),
            }
        });
        for r in 0..routers as u32 {
            let is_corner = corner_index(r % TILES).is_some();
            b.set_power_radix(r, if is_corner { 20 } else { 19 });
        }
        let primaries = if let Some(ctl) = &adaptive {
            ctl.pairs.iter().zip(&ctl.primary_cid).map(|(&(s, d), &c)| (c, s, d)).collect()
        } else {
            self.policy
                .reinforced_pairs()
                .iter()
                .map(|&(s, d)| (primary_cid[s as usize][d as usize], s, d))
                .collect()
        };
        b.build(Box::new(ReconfigRouting {
            base: Own256Routing {
                vcs: cfg.vcs,
                phot_port,
                transit_port,
                wtx,
                placement: crate::own256::AntennaPlacement::Corners,
            },
            spare,
            failover: self.policy.primaries_failed(),
            protect: self.policy.runtime_protect(),
            primaries,
            failed: vec![[false; CLUSTERS as usize]; CLUSTERS as usize],
            adaptive,
        }))
    }
}

/// Profile a finished simulation: per ordered cluster pair, the wireless
/// flit count; returns the four busiest pairs (for
/// [`ReconfigPolicy::Pairs`]).
pub fn profile_hot_pairs(net: &Network) -> Vec<(u32, u32)> {
    let alloc = ChannelAllocation::table_i();
    let mut loads: Vec<((u32, u32), u64)> = Vec::new();
    for (ch, &flits) in net.channels().iter().zip(&net.stats.channel_flits) {
        if let LinkClass::Wireless { channel, .. } = ch.class {
            if let Some(l) = alloc.links.iter().find(|l| l.channel == channel) {
                loads.push(((l.src, l.dst), flits));
            }
        }
    }
    loads.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    loads.into_iter().take(4).map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::{BernoulliInjector, TrafficPattern};

    #[test]
    fn policies_enumerate_pairs() {
        assert!(ReconfigPolicy::None.reinforced_pairs().is_empty());
        assert_eq!(ReconfigPolicy::Diagonal.reinforced_pairs().len(), 4);
        let p = ReconfigPolicy::Pairs(vec![(0, 1), (1, 0)]);
        assert_eq!(p.reinforced_pairs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "four spare bands")]
    fn more_than_four_pairs_rejected() {
        let _ = ReconfigPolicy::Pairs(vec![(0, 1); 5]).reinforced_pairs();
    }

    #[test]
    fn spare_channels_materialize_on_bands_13_16() {
        let net = Own256Reconfig::new(ReconfigPolicy::Diagonal).build(RouterConfig::default());
        let spares: Vec<u8> = net
            .channels()
            .iter()
            .filter_map(|c| match c.class {
                LinkClass::Wireless { channel, .. } if channel >= 13 => Some(channel),
                _ => None,
            })
            .collect();
        assert_eq!(spares.len(), 4);
        assert!(spares.iter().all(|&c| (13..=16).contains(&c)));
    }

    #[test]
    fn traffic_splits_between_primary_and_spare() {
        let mut net = Own256Reconfig::new(ReconfigPolicy::Diagonal).build(RouterConfig::default());
        // Saturating diagonal traffic: cluster 0 -> cluster 2 only.
        for t in 0..16u32 {
            for rep in 0..4 {
                let dst_tile = (t + rep) % 16;
                net.inject_packet(t * 4, 2 * 64 + dst_tile * 4 + 1, 2);
            }
        }
        assert!(net.drain(50_000));
        let (mut primary, mut spare) = (0u64, 0u64);
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                match channel {
                    3 => primary += f, // band 3 = 0 -> 2 diagonal primary
                    15 => spare += f,  // third spare = (0,2) in Diagonal order
                    _ => {}
                }
            }
        }
        assert!(primary > 0 && spare > 0, "primary {primary}, spare {spare}");
        // The parity split is roughly even.
        let ratio = primary as f64 / spare as f64;
        assert!((0.5..2.0).contains(&ratio), "split ratio {ratio}");
    }

    #[test]
    fn reconfig_improves_diagonal_saturation() {
        // Diagonal-heavy traffic: transpose-like cluster pattern where
        // clusters exchange with their diagonal counterpart.
        let run = |topo: &dyn Topology| -> u64 {
            let mut net = topo.build(RouterConfig::default());
            let mut inj = BernoulliInjector::new(0.05, 2, TrafficPattern::Transpose, 5);
            inj.drive(&mut net, 1_500);
            assert!(net.drain(300_000));
            net.now
        };
        let plain = run(&Own256Reconfig::new(ReconfigPolicy::None));
        let diag = run(&Own256Reconfig::new(ReconfigPolicy::Diagonal));
        assert!(diag <= plain, "spare diagonal channels must not slow delivery: {diag} vs {plain}");
    }

    #[test]
    fn profiling_finds_hot_pairs() {
        let mut net = Own256Reconfig::new(ReconfigPolicy::None).build(RouterConfig::default());
        // Hammer 1 -> 3 (and lightly 0 -> 1).
        for i in 0..40 {
            net.inject_packet(64 + (i % 64), 3 * 64 + (i % 64), 2);
        }
        net.inject_packet(0, 64, 2);
        assert!(net.drain(50_000));
        let hot = profile_hot_pairs(&net);
        assert_eq!(hot[0], (1, 3), "hottest pair must rank first: {hot:?}");
    }

    #[test]
    fn failover_carries_all_pair_traffic_on_spare() {
        // Primary channel (1,3) has failed; every 1->3 packet must ride
        // band 13 (the first spare) and none may touch band 2 (the
        // primary for 1->3).
        let topo = Own256Reconfig::new(ReconfigPolicy::Failover(vec![(1, 3)]));
        let mut net = topo.build(RouterConfig::default());
        for t in 0..16u32 {
            net.inject_packet(64 + t * 4, 3 * 64 + t * 4 + 1, 2);
        }
        assert!(net.drain(50_000));
        assert_eq!(net.stats.packets_delivered, 16);
        let mut by_band = std::collections::HashMap::new();
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                *by_band.entry(channel).or_insert(0u64) += f;
            }
        }
        assert_eq!(by_band.get(&2).copied().unwrap_or(0), 0, "dead primary must stay dark");
        assert_eq!(by_band.get(&13).copied().unwrap_or(0), 32, "all flits on the spare");
    }

    #[test]
    fn failover_preserves_connectivity_under_uniform_traffic() {
        use noc_traffic::{BernoulliInjector, TrafficPattern};
        // Two failed primaries covered by spares: the network stays fully
        // connected and delivers everything.
        let topo = Own256Reconfig::new(ReconfigPolicy::Failover(vec![(0, 2), (2, 0)]));
        let mut net = topo.build(RouterConfig::default());
        let mut inj = BernoulliInjector::new(0.03, 3, TrafficPattern::Uniform, 21);
        inj.drive(&mut net, 800);
        assert!(net.drain(300_000));
        assert_eq!(net.stats.packets_offered, net.stats.packets_delivered);
    }

    /// The `ChannelId` of the primary wireless channel carrying `band`.
    fn band_channel(net: &noc_core::Network, band: u8) -> noc_core::ChannelId {
        net.channels()
            .iter()
            .position(|c| matches!(c.class, LinkClass::Wireless { channel, .. } if channel == band))
            .expect("band not found") as noc_core::ChannelId
    }

    /// Per-band wireless flit counts of a finished run.
    fn flits_by_band(net: &noc_core::Network) -> std::collections::HashMap<u8, u64> {
        let mut by_band = std::collections::HashMap::new();
        for (ch, &f) in net.channels().iter().zip(&net.stats.channel_flits) {
            if let LinkClass::Wireless { channel, .. } = ch.class {
                *by_band.entry(channel).or_insert(0u64) += f;
            }
        }
        by_band
    }

    #[test]
    fn protect_spares_stay_dark_without_faults() {
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let mut net = topo.build(RouterConfig::default());
        for t in 0..16u32 {
            net.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
        }
        assert!(net.drain(50_000));
        let by_band = flits_by_band(&net);
        assert_eq!(by_band.get(&13).copied().unwrap_or(0), 0, "standby spare must stay dark");
        assert_eq!(by_band.get(&3).copied().unwrap_or(0), 32, "primary carries everything");
    }

    #[test]
    fn protect_fails_over_to_spare_after_detection() {
        use noc_core::{FaultConfig, FaultEvent, FaultSchedule};
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let mut net = topo.build(RouterConfig::default());
        // Kill the 0 -> 2 primary (band 3) permanently at cycle 200.
        let primary = band_channel(&net, 3);
        net.attach_faults(FaultConfig {
            schedule: FaultSchedule::new()
                .with(FaultEvent::permanent(200, FaultTarget::Channel(primary))),
            detect_delay: 50,
            ..Default::default()
        });
        // Steady 0 -> 2 stream: one packet every 25 cycles for 2000 cycles.
        let mut sent = 0u64;
        for cycle in 0..2_000u64 {
            if cycle % 25 == 0 {
                let t = (sent % 16) as u32;
                net.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
                sent += 1;
            }
            net.step();
        }
        assert!(net.drain(50_000));
        assert_eq!(net.stats.failovers, 1, "one detected failover");
        assert_eq!(net.stats.first_failover_at, Some(250), "fault at 200 + 50 detect delay");
        let by_band = flits_by_band(&net);
        assert!(by_band.get(&13).copied().unwrap_or(0) > 0, "spare carries post-failover traffic");
        // Packets committed to the dead primary before detection exhaust
        // their retries and are dropped; everything after rides the spare.
        assert_eq!(
            net.stats.packets_delivered + net.stats.packets_dropped_corrupt,
            sent,
            "every packet is accounted for"
        );
        assert!(net.stats.packets_dropped_corrupt > 0, "pre-detection packets die on the primary");
        assert!(net.stats.delivered_fraction() < 1.0);
        assert!(
            net.stats.packets_delivered > net.stats.packets_dropped_corrupt,
            "most packets survive the failover"
        );
    }

    #[test]
    fn protect_switches_back_when_primary_recovers() {
        use noc_core::{FaultConfig, FaultEvent, FaultSchedule};
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let mut net = topo.build(RouterConfig::default());
        let primary = band_channel(&net, 3);
        // Transient outage: down at 100 for 300 cycles, detection 20.
        net.attach_faults(FaultConfig {
            schedule: FaultSchedule::new().with(FaultEvent::transient(
                100,
                FaultTarget::Channel(primary),
                300,
            )),
            detect_delay: 20,
            ..Default::default()
        });
        // Quiet network: let the fault fire, be detected, clear, and be
        // re-detected, then send fresh traffic — it must use the primary.
        while net.now < 500 {
            net.step();
        }
        assert_eq!(net.stats.failovers, 2, "failover out and back");
        let before = flits_by_band(&net).get(&3).copied().unwrap_or(0);
        for t in 0..16u32 {
            net.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
        }
        assert!(net.drain(50_000));
        let by_band = flits_by_band(&net);
        assert_eq!(by_band.get(&3).copied().unwrap_or(0) - before, 32, "traffic back on primary");
        assert_eq!(net.stats.packets_delivered, 16);
        assert_eq!(net.stats.delivered_fraction(), 1.0);
    }

    #[test]
    fn all_policies_drain_uniform_traffic() {
        for policy in [
            ReconfigPolicy::None,
            ReconfigPolicy::Diagonal,
            ReconfigPolicy::Pairs(vec![(0, 1), (2, 3)]),
            ReconfigPolicy::Failover(vec![(3, 1)]),
            ReconfigPolicy::Protect(vec![(0, 2), (2, 0)]),
            ReconfigPolicy::Adaptive { epoch: 256, hysteresis: 512 },
        ] {
            let topo = Own256Reconfig::new(policy);
            let mut net = topo.build(RouterConfig::default());
            let mut inj = BernoulliInjector::new(0.04, 3, TrafficPattern::Uniform, 11);
            inj.drive(&mut net, 800);
            assert!(net.drain(200_000), "{} stuck", topo.name());
            assert_eq!(net.stats.packets_offered, net.stats.packets_delivered);
        }
    }

    /// Steady cluster-to-cluster stream: one `s -> d` packet every
    /// `period` cycles for `cycles` cycles, cycling destination tiles.
    fn stream(net: &mut noc_core::Network, s: u32, d: u32, period: u64, cycles: u64) -> u64 {
        let mut sent = 0u64;
        for cycle in 0..cycles {
            if cycle.is_multiple_of(period) {
                let t = (sent % 16) as u32;
                net.inject_packet(s * 64 + t * 4, d * 64 + t * 4 + 1, 2);
                sent += 1;
            }
            net.step();
        }
        sent
    }

    #[test]
    fn adaptive_wires_a_dark_spare_to_every_pair() {
        let topo = Own256Reconfig::new(ReconfigPolicy::Adaptive { epoch: 256, hysteresis: 512 });
        let net = topo.build(RouterConfig::default());
        let spares = net
            .channels()
            .iter()
            .filter(|c| matches!(c.class, LinkClass::Wireless { channel, .. } if channel >= 13))
            .count();
        assert_eq!(spares, 12, "one spare per ordered cluster pair");
        assert!(net.sensors().is_some(), "adaptive routing enables utilization sensors");
    }

    #[test]
    fn adaptive_steers_a_slot_onto_the_hot_pair() {
        let topo = Own256Reconfig::new(ReconfigPolicy::Adaptive { epoch: 256, hysteresis: 512 });
        let mut net = topo.build(RouterConfig::default());
        // Hammer 0 -> 2: after the first epoch the controller must aim a
        // slot at the pair, after which traffic parity-splits between the
        // primary (band 3) and the pair's spare.
        stream(&mut net, 0, 2, 4, 4_000);
        assert!(net.drain(50_000));
        let by_band = flits_by_band(&net);
        let spare: u64 = (13..=16).filter_map(|b| by_band.get(&b)).sum();
        let primary = by_band.get(&3).copied().unwrap_or(0);
        assert!(spare > 0, "spare must carry traffic after steering: {by_band:?}");
        assert!(primary > 0, "primary keeps its parity share: {by_band:?}");
    }

    #[test]
    fn adaptive_slot_dwells_through_hysteresis() {
        // Two hot phases: 0 -> 2 then 1 -> 3. With a hysteresis longer
        // than the run, the (0,2) slot must survive its traffic dying off,
        // and (1,3) takes a *free* slot — exactly two assignments total.
        let topo =
            Own256Reconfig::new(ReconfigPolicy::Adaptive { epoch: 128, hysteresis: 100_000 });
        let mut net = topo.build(RouterConfig::default());
        stream(&mut net, 0, 2, 4, 2_000);
        stream(&mut net, 1, 3, 4, 2_000);
        assert!(net.drain(50_000));
        let words = net.snapshot().routing;
        // Layout: 16 failed flags, 4 slot words, 4 assigned_at, reassignments.
        let slots = &words[16..20];
        let reassignments = words[24];
        assert_eq!(reassignments, 2, "one assignment per hot pair, no flapping");
        // Pair (0,2) is index 1, pair (1,3) is index 5 in enumeration order.
        assert!(slots.contains(&1), "hot pair (0,2) still holds its slot: {slots:?}");
        assert!(slots.contains(&5), "hot pair (1,3) got a free slot: {slots:?}");
    }

    #[test]
    fn adaptive_fault_preempts_spare_for_protection() {
        use noc_core::{FaultConfig, FaultEvent, FaultSchedule};
        let topo = Own256Reconfig::new(ReconfigPolicy::Adaptive { epoch: 256, hysteresis: 512 });
        let mut net = topo.build(RouterConfig::default());
        // Kill the 0 -> 2 primary permanently at cycle 1000 (after the
        // controller has already aimed a bandwidth slot at the hot pair).
        let primary = band_channel(&net, 3);
        net.attach_faults(FaultConfig {
            schedule: FaultSchedule::new()
                .with(FaultEvent::permanent(1_000, FaultTarget::Channel(primary))),
            detect_delay: 50,
            ..Default::default()
        });
        let sent = stream(&mut net, 0, 2, 25, 3_000);
        assert!(net.drain(50_000));
        assert_eq!(net.stats.failovers, 1, "fault detection escalates the slot");
        let words = net.snapshot().routing;
        // Pair (0,2) = index 1, protect bit set (bit 32).
        assert!(
            words[16..20].contains(&(1 | (1 << 32))),
            "slot holds (0,2) in protect mode: {:?}",
            &words[16..20]
        );
        assert_eq!(
            net.stats.packets_delivered + net.stats.packets_dropped_corrupt,
            sent,
            "every packet accounted for"
        );
        assert!(
            net.stats.packets_delivered > net.stats.packets_dropped_corrupt,
            "post-detection traffic survives on the spare"
        );
    }

    #[test]
    fn protect_failover_state_survives_snapshot() {
        use noc_core::{FaultConfig, FaultEvent, FaultSchedule};
        // Regression: Protect's failed-pair table was not part of
        // save_state, so a checkpoint taken after a failover restored to a
        // network that routed onto the dead primary.
        let topo = Own256Reconfig::new(ReconfigPolicy::Protect(vec![(0, 2)]));
        let cfg = |net: &noc_core::Network| FaultConfig {
            schedule: FaultSchedule::new()
                .with(FaultEvent::permanent(200, FaultTarget::Channel(band_channel(net, 3)))),
            detect_delay: 50,
            ..Default::default()
        };
        let build = || {
            let mut net = topo.build(RouterConfig::default());
            let fc = cfg(&net);
            net.attach_faults(fc);
            net
        };
        let mut reference = build();
        let sent = stream(&mut reference, 0, 2, 25, 2_000);
        assert!(reference.drain(50_000));
        assert_eq!(reference.stats.failovers, 1);

        let mut first = build();
        stream(&mut first, 0, 2, 25, 600); // past the failover at 250
        let snap = first.snapshot();
        let mut resumed = build();
        resumed.restore(&snap).unwrap();
        // Continue the identical injection tail.
        let mut sent_r = 24; // packets already sent in the first 600 cycles
        for cycle in 600..2_000u64 {
            if cycle.is_multiple_of(25) {
                let t = (sent_r % 16) as u32;
                resumed.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
                sent_r += 1;
            }
            resumed.step();
        }
        assert_eq!(sent_r, sent);
        assert!(resumed.drain(50_000));
        assert_eq!(resumed.stats, reference.stats, "restored run must be bit-identical");
    }

    #[test]
    fn adaptive_state_survives_snapshot() {
        let topo = Own256Reconfig::new(ReconfigPolicy::Adaptive { epoch: 256, hysteresis: 512 });
        let mut reference = topo.build(RouterConfig::default());
        stream(&mut reference, 0, 2, 4, 4_000);
        assert!(reference.drain(50_000));

        let mut first = topo.build(RouterConfig::default());
        stream(&mut first, 0, 2, 4, 1_500); // slot assigned at cycle 256
        let snap = first.snapshot();
        assert!(snap.sensors.is_some(), "sensor EWMAs ride the snapshot");
        let mut resumed = topo.build(RouterConfig::default());
        resumed.restore(&snap).unwrap();
        let mut sent = 375; // ceil(1500 / 4) packets already injected
        for cycle in 1_500..4_000u64 {
            if cycle.is_multiple_of(4) {
                let t = (sent % 16) as u32;
                resumed.inject_packet(t * 4, 2 * 64 + t * 4 + 1, 2);
                sent += 1;
            }
            resumed.step();
        }
        assert!(resumed.drain(50_000));
        assert_eq!(resumed.stats, reference.stats, "adaptive run must resume bit-identically");
    }
}
