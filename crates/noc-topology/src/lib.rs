//! # noc-topology — OWN and baseline NoC topologies
//!
//! Implements the five architectures compared in the paper, at both 256 and
//! 1024 cores, each as a [`Topology`] that builds a ready-to-run
//! [`noc_core::Network`] (routers, channels, shared buses, and a
//! deadlock-free routing function):
//!
//! * [`CMesh`] — concentrated 2-D mesh, 4 cores/router, XY dimension-order
//!   routing (the pure-electrical baseline).
//! * [`WirelessCMesh`] — 4-router electrically-crossbarred subnets with one
//!   wireless router each; XY DOR over the subnet grid (WCube-like).
//! * [`OptXb`] — single-stage photonic MWSR crossbar with token arbitration
//!   (Corona-like).
//! * [`PClos`] — two-hop photonic Clos: MWSR up-buses into middle switches,
//!   MWSR down-buses back to node routers.
//! * [`Own`] — the paper's contribution: photonic MWSR crossbars inside each
//!   16-tile cluster, wireless channels between clusters (256 cores) and
//!   SWMR wireless multicast between groups (1024 cores).
//!
//! Channel allocation (Tables I and II of the paper) lives in [`channels`];
//! the bisection-bandwidth equalization of §V-A lives in [`normalize`].
//!
//! ```
//! use noc_topology::{Own, Topology};
//!
//! let own = Own::new_256();
//! assert_eq!(own.diameter_hops(), 3); // photonic -> wireless -> photonic
//! let mut net = own.build(Default::default());
//! net.inject_packet(0, 255, 2); // cluster 0 to cluster 3
//! assert!(net.drain(2_000));
//! ```

pub mod channels;
pub mod cmesh;
pub mod normalize;
pub mod optxb;
pub mod own1024;
pub mod own256;
pub mod pclos;
pub mod reconfig;
pub mod topology;
pub mod wcmesh;

pub use channels::{ChannelAllocation, WirelessLink};
pub use cmesh::CMesh;
pub use optxb::OptXb;
pub use own1024::Own1024;
pub use own256::{AntennaPlacement, Own256};
pub use pclos::PClos;
pub use reconfig::{profile_hot_pairs, Own256Reconfig, ReconfigPolicy};
pub use topology::{OwnScale, Topology};
pub use wcmesh::WirelessCMesh;

/// The paper's standard topology suite at a given core count (Figures 6–8):
/// CMESH, wireless-CMESH, OptXB, p-Clos and OWN.
pub fn paper_suite(cores: u32) -> Vec<Box<dyn Topology>> {
    vec![
        Box::new(CMesh::new(cores)),
        Box::new(WirelessCMesh::new(cores)),
        Box::new(OptXb::new(cores)),
        Box::new(PClos::new(cores)),
        own(cores),
    ]
}

/// The OWN topology for the given core count (256 or 1024).
pub fn own(cores: u32) -> Box<dyn Topology> {
    match cores {
        256 => Box::new(Own256::new()),
        1024 => Box::new(Own1024::new()),
        _ => panic!("OWN is defined for 256 and 1024 cores, not {cores}"),
    }
}

/// Convenience alias so callers can write `Own::new_256()`.
pub struct Own;

impl Own {
    /// The 256-core OWN (Fig. 1 of the paper).
    pub fn new_256() -> Own256 {
        Own256::new()
    }

    /// The 1024-core OWN (Fig. 2 of the paper).
    pub fn new_1024() -> Own1024 {
        Own1024::new()
    }
}
