//! The [`Topology`] trait: what every architecture under evaluation provides.

use noc_core::{Network, RouterConfig};

/// OWN scale selector (the paper evaluates exactly these two sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnScale {
    /// 256 cores: 4 clusters × 16 tiles × 4 cores (Fig. 1).
    Cores256,
    /// 1024 cores: 4 groups of the 256-core block (Fig. 2).
    Cores1024,
}

impl OwnScale {
    /// Total cores.
    pub fn cores(self) -> u32 {
        match self {
            OwnScale::Cores256 => 256,
            OwnScale::Cores1024 => 1024,
        }
    }
}

/// An architecture that can be instantiated as a simulatable network.
pub trait Topology: Send + Sync {
    /// Display name (as used in the paper's figures).
    fn name(&self) -> String;

    /// Total processing cores.
    fn num_cores(&self) -> u32;

    /// Build the network: routers, channels/buses and routing.
    fn build(&self, cfg: RouterConfig) -> Network;

    /// Network diameter in router-to-router hops (worst case, as quoted in
    /// §V-A; used by tests to bound observed hop counts).
    fn diameter_hops(&self) -> u32;

    /// Bisection capacity in flits per cycle after normalization (see
    /// [`crate::normalize`]); every topology in a comparison should report
    /// (approximately) the same value.
    fn bisection_flits_per_cycle(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_core_counts() {
        assert_eq!(OwnScale::Cores256.cores(), 256);
        assert_eq!(OwnScale::Cores1024.cores(), 1024);
    }
}
