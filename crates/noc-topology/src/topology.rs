//! The [`Topology`] trait: what every architecture under evaluation provides.

use noc_core::{Network, RouterConfig};

/// OWN scale selector (the paper evaluates exactly these two sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnScale {
    /// 256 cores: 4 clusters × 16 tiles × 4 cores (Fig. 1).
    Cores256,
    /// 1024 cores: 4 groups of the 256-core block (Fig. 2).
    Cores1024,
}

impl OwnScale {
    /// Total cores.
    pub fn cores(self) -> u32 {
        match self {
            OwnScale::Cores256 => 256,
            OwnScale::Cores1024 => 1024,
        }
    }
}

/// An architecture that can be instantiated as a simulatable network.
pub trait Topology: Send + Sync {
    /// Display name (as used in the paper's figures).
    fn name(&self) -> String;

    /// Total processing cores.
    fn num_cores(&self) -> u32;

    /// Build the network: routers, channels/buses and routing.
    fn build(&self, cfg: RouterConfig) -> Network;

    /// Network diameter in router-to-router hops (worst case, as quoted in
    /// §V-A; used by tests to bound observed hop counts).
    fn diameter_hops(&self) -> u32;

    /// Bisection capacity in flits per cycle after normalization (see
    /// [`crate::normalize`]); every topology in a comparison should report
    /// (approximately) the same value.
    fn bisection_flits_per_cycle(&self) -> f64;

    /// Number of spatial clusters for telemetry aggregation (the paper's
    /// cluster = one concentrated subnet sharing a wireless hub). Flat
    /// topologies report a single cluster.
    fn num_clusters(&self) -> usize {
        1
    }

    /// Cluster owning router `router` (must be `< num_clusters()`).
    fn cluster_of(&self, _router: u32) -> usize {
        0
    }

    /// Number of cluster groups (the 1024-core OWN stacks 4 clusters per
    /// group; everything else has one group).
    fn num_groups(&self) -> usize {
        1
    }

    /// Group owning cluster `cluster` (must be `< num_groups()`).
    fn group_of_cluster(&self, _cluster: usize) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_core_counts() {
        assert_eq!(OwnScale::Cores256.cores(), 256);
        assert_eq!(OwnScale::Cores1024.cores(), 1024);
    }
}
