//! OptXB: the all-photonic crossbar baseline (Corona-like, §V-A).
//!
//! Every concentrated router (4 cores) owns a *home* waveguide that snakes
//! through all other routers: a multiple-writer single-reader bus arbitrated
//! by a circulating token. Any router reaches any other in exactly one hop
//! (maximum diameter 1), at the cost of `n−1` write ports per router — the
//! radix the paper quotes as 67 for 64 routers (63 crossbar + 4 cores) —
//! and a token round-trip that "consumes a few extra cycles".

use noc_core::{
    BusKind, CoreId, LinkClass, Network, NetworkBuilder, PortId, RouteDecision, RouterConfig,
    RouterId, RoutingAlg,
};

use crate::normalize::{latency, ser, token};
use crate::topology::Topology;

const CONC: u32 = 4;

/// Single-stage photonic crossbar.
#[derive(Debug, Clone)]
pub struct OptXb {
    cores: u32,
}

impl OptXb {
    /// OptXB for `cores` cores (any multiple of 4).
    pub fn new(cores: u32) -> Self {
        assert_eq!(cores % CONC, 0);
        OptXb { cores }
    }

    fn routers(&self) -> u32 {
        self.cores / CONC
    }
}

struct OptXbRouting {
    vcs: u8,
    /// `wport[src][dst]` — src's write port onto dst's home waveguide.
    wport: Vec<Vec<PortId>>,
}

impl RoutingAlg for OptXbRouting {
    fn route(&self, router: RouterId, dst: CoreId) -> RouteDecision {
        let dr = dst / CONC;
        if dr == router {
            RouteDecision::any_vc((dst % CONC) as PortId, self.vcs)
        } else {
            RouteDecision::any_vc(self.wport[router as usize][dr as usize], self.vcs)
        }
    }
}

impl Topology for OptXb {
    fn name(&self) -> String {
        format!("OptXB-{}", self.cores)
    }

    fn num_cores(&self) -> u32 {
        self.cores
    }

    fn diameter_hops(&self) -> u32 {
        1
    }

    fn bisection_flits_per_cycle(&self) -> f64 {
        // Capacity n/ser flits/cycle, half of which crosses the bisection
        // under uniform traffic (see normalize.rs).
        f64::from(self.cores / 4) / f64::from(ser::optxb(self.cores)) / 2.0
    }

    fn build(&self, cfg: RouterConfig) -> Network {
        let n = self.routers() as usize;
        let mut b = NetworkBuilder::new(n, self.cores as usize, cfg);
        for r in 0..n as u32 {
            for p in 0..CONC {
                b.attach_core(r * CONC + p, r);
            }
        }
        let mut wport = vec![vec![PortId::MAX; n]; n];
        for home in 0..n as u32 {
            let writers: Vec<u32> = (0..n as u32).filter(|&r| r != home).collect();
            let (_, wps, _) = b.add_bus(
                BusKind::Mwsr,
                &writers,
                &[home],
                latency::PHOTONIC,
                ser::optxb(self.cores),
                token::OPTXB,
                LinkClass::Photonic,
            );
            for (w, &src) in writers.iter().enumerate() {
                wport[src as usize][home as usize] = wps[w];
            }
        }
        b.build(Box::new(OptXbRouting { vcs: cfg.vcs, wport }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_is_67_at_256_cores() {
        let net = OptXb::new(256).build(RouterConfig::default());
        // Outputs: 4 eject + 63 writers = 67; inputs: 4 inject + 1 home = 5.
        assert_eq!(net.router(0).num_out_ports(), 67);
        assert_eq!(net.router(0).num_in_ports(), 5);
        assert_eq!(net.router(0).radix(), 67);
    }

    #[test]
    fn one_hop_any_to_any() {
        let mut net = OptXb::new(256).build(RouterConfig::default());
        net.inject_packet(0, 255, 4);
        net.inject_packet(255, 0, 4);
        assert!(net.drain(1000));
        assert_eq!(net.stats.packets_delivered, 2);
        // Exactly one bus traversal per flit: 8 flits → 8 bus traversals.
        assert_eq!(net.stats.bus_flits.iter().sum::<u64>(), 8);
    }

    #[test]
    fn all_writers_share_home_waveguide() {
        let mut net = OptXb::new(64).build(RouterConfig::default());
        // Everyone sends to core 0 (router 0): token must serialize all.
        for src in 4..64 {
            net.inject_packet(src, 0, 1);
        }
        assert!(net.drain(10_000));
        assert_eq!(net.stats.per_core_ejected[0], 60);
    }
}
