//! Quickstart: build OWN-256, drive it with uniform traffic, report
//! latency, throughput and the power breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use own_noc::power::{PowerModel, Scenario, WinocConfig, WirelessModel};
use own_noc::sim::{SimConfig, Simulation};
use own_noc::topology::Own;
use own_noc::traffic::TrafficPattern;

fn main() {
    // 1. The paper's 256-core OWN: 4 photonic clusters + 12 wireless
    //    channels (Table I allocation).
    let topology = Own::new_256();

    // 2. Simulate uniform random traffic at 3% injection (flits/core/cycle),
    //    4-flit packets, with warm-up / measurement / drain phases.
    let cfg = SimConfig {
        rate: 0.03,
        pattern: TrafficPattern::Uniform,
        packet_len: 4,
        warmup: 1_000,
        measure: 5_000,
        drain: 20_000,
        ..Default::default()
    };
    let result = Simulation::new(&topology, cfg).run();

    println!("OWN-256, uniform random @ {} flits/core/cycle", cfg.rate);
    println!("  packets measured : {}", result.packets_measured);
    println!("  avg latency      : {:.1} cycles", result.avg_latency);
    println!("  p99 latency      : {} cycles", result.p99_latency);
    println!("  throughput       : {:.4} flits/core/cycle", result.throughput);
    println!("  acceptance       : {:.1} %", result.acceptance() * 100.0);

    // 3. Price the run: Table IV configuration 4 (CMOS long+medium range,
    //    BiCMOS short) under the ideal 32 GHz scenario — the paper's best
    //    configuration.
    let model = PowerModel::new(WirelessModel::own(Scenario::Ideal, WinocConfig::Config4));
    let power = model.price(&result.net, result.cycles);
    println!("power breakdown (configuration 4, ideal scenario):");
    println!("  photonic  : {:.3} W", power.photonic_w);
    println!("  wireless  : {:.3} W", power.wireless_w);
    println!("  routers   : {:.3} W", power.router_dynamic_w + power.router_static_w);
    println!("  total     : {:.3} W", power.total_w());
    println!("  energy    : {:.2} nJ/packet", power.nj_per_packet());
}
