//! Topology shootout: the paper's Figure 6/7 scenario in miniature.
//!
//! Compares all five architectures (CMESH, wireless-CMESH, OptXB, p-Clos,
//! OWN) at 256 cores under uniform random traffic: saturation throughput,
//! zero-load latency, and total power — the three axes of the paper's
//! evaluation.
//!
//! ```text
//! cargo run --release --example topology_shootout [-- <cores>]
//! ```

use own_noc::power::{Scenario, WinocConfig};
use own_noc::sim::experiments::power::model_for;
use own_noc::sim::sweep::saturation_throughput;
use own_noc::sim::{SimConfig, Simulation};
use own_noc::topology::paper_suite;
use own_noc::traffic::TrafficPattern;

fn main() {
    let cores: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(256);
    println!("architecture          sat-throughput  zero-load-lat  total-power");
    println!("                      (flits/c/cyc)   (cycles)       (W)");
    println!("------------------------------------------------------------------");
    for topo in paper_suite(cores) {
        let base = SimConfig { warmup: 500, measure: 2_500, drain: 10_000, ..Default::default() };

        // Saturation throughput: offered load 1.0, measure accepted rate.
        let sat = saturation_throughput(topo.as_ref(), TrafficPattern::Uniform, base);

        // Zero-load latency: 0.5% injection.
        let cfg = SimConfig { rate: 0.005, pattern: TrafficPattern::Uniform, ..base };
        let low = Simulation::new(topo.as_ref(), cfg).run();

        // Power at a moderate 3% load, priced with the right wireless model.
        let cfg = SimConfig { rate: 0.03, pattern: TrafficPattern::Uniform, ..base };
        let mid = Simulation::new(topo.as_ref(), cfg).run();
        let model = model_for(&mid.name, Scenario::Ideal, WinocConfig::Config4);
        let power = model.price(&mid.net, mid.cycles);

        println!(
            "{:<21} {:<15.4} {:<14.1} {:.3}",
            topo.name(),
            sat,
            low.avg_latency,
            power.total_w()
        );
    }
    println!();
    println!("Expected shape (paper §V): similar throughputs (equalized bisection),");
    println!("OWN lowest latency among non-crossbars, OptXB cheapest, CMESH most");
    println!("expensive (>30% above OWN), wireless-CMESH slightly above OWN.");
}
