//! Wireless link designer: explore the §IV design space.
//!
//! Walks the PHY stack of the paper: link budget (Figure 3), the 90 GHz
//! OOK transceiver blocks (Figure 4), the Table III band plans, and the
//! Table IV technology configurations — then recommends a configuration the
//! way §V-B does (CMOS on the long links, SDM to stretch the CMOS bands).
//!
//! ```text
//! cargo run --release --example wireless_designer
//! ```

use own_noc::core::DistanceClass;
use own_noc::phy::{ClassAbPa, ColpittOscillator, LinkBudget, Lna, OokTransceiver};
use own_noc::power::{band_plan, Scenario, WinocConfig, WirelessModel};

fn main() {
    // --- Figure 3: link budget over the OWN distances -------------------
    let lb = LinkBudget::default();
    println!("link budget @ {} Gb/s, {} GHz:", lb.data_rate_gbps, lb.carrier_ghz);
    for class in [DistanceClass::SR, DistanceClass::E2E, DistanceClass::C2C] {
        let d = class.distance_mm();
        println!(
            "  {class:?} ({d:>2.0} mm): path loss {:>5.1} dB, required TX {:>5.1} dBm",
            lb.path_loss_db(d),
            lb.required_tx_power_dbm(d, 0.0),
        );
    }

    // --- Figure 4: can the 65 nm CMOS blocks close the link? ------------
    let osc = ColpittOscillator::default();
    let pa = ClassAbPa::default();
    let lna = Lna::default();
    println!("\n65 nm CMOS transceiver blocks:");
    println!(
        "  Colpitt oscillator: {:.1} GHz, phase noise {:.1} dBc/Hz @ 1 MHz",
        osc.frequency_hz() / 1e9,
        osc.phase_noise_dbc_hz(1e6)
    );
    println!(
        "  class-AB PA: gain {:.1} dB, P1dB {:.1} dBm, Psat {:.0} dBm, {:.0} mW DC",
        pa.gain_db(90.0),
        pa.p1db_dbm(),
        pa.psat_dbm,
        pa.dc_power_w * 1e3
    );
    println!("  LNA: {:.0} dB gain, {:.0} GHz 3-dB BW", lna.gain_db(90.0), lna.bandwidth_3db_ghz());

    let trx = OokTransceiver::default();
    for d in [10.0, 30.0, 50.0, 60.0] {
        println!(
            "  {d:>2.0} mm link: closes = {:<5} energy = {:.2} pJ/bit",
            trx.link_closes(d, 0.0),
            trx.energy_pj_per_bit_at(d, 0.0)
        );
    }
    println!("  gap to the Table III CMOS projection: {:.1}x", trx.projection_gap(Scenario::Ideal));

    // --- Table III band plans -------------------------------------------
    for scenario in [Scenario::Ideal, Scenario::Conservative] {
        let plan = band_plan(scenario);
        let cmos = plan.iter().filter(|b| b.tech.name() == "CMOS").count();
        println!(
            "\n{} scenario: {} bands, {:.0}-{:.0} GHz, {} CMOS bands",
            scenario.name(),
            plan.len(),
            plan[0].center_ghz,
            plan[15].center_ghz,
            cmos
        );
    }

    // --- Table IV: pick the best configuration like §V-B ----------------
    println!("\nconfiguration comparison (mean pJ/bit over the 12 OWN links):");
    let mut best: Option<(WinocConfig, f64)> = None;
    for cfg in WinocConfig::all() {
        let model = WirelessModel::own(Scenario::Ideal, cfg);
        let mean: f64 = (1..=12u8)
            .map(|ch| {
                let class = match ch {
                    1..=4 => DistanceClass::C2C,
                    5..=8 => DistanceClass::E2E,
                    _ => DistanceClass::SR,
                };
                model.energy_pj_per_bit(ch, class)
            })
            .sum::<f64>()
            / 12.0;
        println!("  {}: {mean:.3} pJ/bit", cfg.name());
        if best.is_none_or(|(_, b)| mean < b) {
            best = Some((cfg, mean));
        }
    }
    let (cfg, mean) = best.unwrap();
    println!(
        "\nrecommended: {} ({mean:.3} pJ/bit) — CMOS on the long links with \
         SDM frequency reuse, as §V-B concludes",
        cfg.name()
    );
}
