//! Building your own architecture on the `noc-core` engine.
//!
//! The OWN reproduction is built entirely on public APIs, and so can any
//! other architecture. This example assembles a small custom hybrid — a
//! 4-router electrical ring with one photonic MWSR "express bus" shortcut —
//! wires up deadlock-free routing, drives it with traffic, and prices it.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use own_noc::core::routing::{RouteDecision, RoutingAlg};
use own_noc::core::{BusKind, LinkClass, NetworkBuilder, RouterConfig};
use own_noc::power::{PowerModel, Scenario, WirelessModel};
use own_noc::traffic::{BernoulliInjector, TrafficPattern};

/// 4 routers in a unidirectional electrical ring (0→1→2→3→0), one core
/// each, plus a photonic MWSR bus that every router can write and router 0
/// reads — an "express lane" for traffic headed to router 0.
struct RingWithExpress {
    ring_port: Vec<u16>,
    express_port: Vec<u16>,
}

impl RoutingAlg for RingWithExpress {
    fn route(&self, router: u32, dst: u32) -> RouteDecision {
        if dst == router {
            return RouteDecision::any_vc(0, 4); // eject
        }
        if dst == 0 && router != 0 {
            // Express photonic hop straight to router 0.
            return RouteDecision::any_vc(self.express_port[router as usize], 4);
        }
        // Otherwise follow the ring. A unidirectional ring with wormhole
        // flow control can deadlock on itself; the classic dateline
        // discipline breaks the cycle: packets whose remaining path wraps
        // around the 3→0 edge (router > dst) ride VC 0, packets past the
        // wrap (router < dst) ride VC 1. Each VC's channel-dependence
        // chain is then acyclic.
        let vc = if router > dst { 0 } else { 1 };
        RouteDecision::vc_range(self.ring_port[router as usize], vc, vc)
    }
}

fn main() {
    let mut b = NetworkBuilder::new(4, 4, RouterConfig::default().with_speculation());
    for r in 0..4 {
        b.attach_core(r, r);
    }
    // Electrical ring links.
    let mut ring_port = vec![0u16; 4];
    for r in 0..4u32 {
        let next = (r + 1) % 4;
        let (_, op, _) = b.add_channel(r, next, 1, 1, LinkClass::Electrical { length_mm: 2.5 });
        ring_port[r as usize] = op;
    }
    // Photonic express bus into router 0.
    let (_, wports, _) = b.add_bus(BusKind::Mwsr, &[1, 2, 3], &[0], 2, 1, 1, LinkClass::Photonic);
    let mut express_port = vec![u16::MAX; 4];
    for (w, &r) in [1u32, 2, 3].iter().enumerate() {
        express_port[r as usize] = wports[w];
    }

    let mut net = b.build(Box::new(RingWithExpress { ring_port, express_port }));

    let mut inj = BernoulliInjector::new(0.2, 2, TrafficPattern::Uniform, 11);
    inj.drive(&mut net, 5_000);
    assert!(net.drain(100_000), "custom topology must drain");
    net.check_invariants();

    let model = PowerModel::new(WirelessModel::baseline(Scenario::Ideal));
    let power = model.price(&net, net.now);

    println!("ring-with-express (4 routers, 1 MWSR express bus):");
    println!("  packets delivered : {}", net.stats.packets_delivered);
    println!("  avg latency       : {:.1} cycles", net.stats.latency.mean());
    println!(
        "  express traffic   : {} flits over the photonic bus",
        net.stats.bus_flits.iter().sum::<u64>()
    );
    println!(
        "  ring traffic      : {} flits over the electrical links",
        net.stats.channel_flits.iter().sum::<u64>()
    );
    println!("  power             : {:.4} W", power.total_w());
    println!();
    println!("Implement `Topology` to plug a custom design into the sweep,");
    println!("power, and experiment machinery the OWN evaluation uses.");
}
