//! Kilo-core scaling study: OWN-256 vs OWN-1024 (§III-B, Figure 8).
//!
//! Shows how the architecture scales from 256 to 1024 cores with the same
//! 16-channel wireless spectrum: point-to-point channels become SWMR
//! multicast buses, radix grows from 20 to 22, and multicast discards start
//! costing receiver energy.
//!
//! ```text
//! cargo run --release --example kilocore_scaling
//! ```

use own_noc::core::LinkClass;
use own_noc::power::{PowerModel, Scenario, WinocConfig, WirelessModel};
use own_noc::sim::{SimConfig, Simulation};
use own_noc::topology::{Own, Topology};
use own_noc::traffic::TrafficPattern;

fn main() {
    for scale in ["256", "1024"] {
        let topo: Box<dyn Topology> = match scale {
            "256" => Box::new(Own::new_256()),
            _ => Box::new(Own::new_1024()),
        };
        // Load scaled to keep the shared 16-channel spectrum unsaturated.
        let rate = if scale == "256" { 0.03 } else { 0.008 };
        let cfg = SimConfig {
            rate,
            pattern: TrafficPattern::Uniform,
            warmup: 1_000,
            measure: 4_000,
            drain: 20_000,
            ..Default::default()
        };
        let result = Simulation::new(topo.as_ref(), cfg).run();
        let model = PowerModel::new(WirelessModel::own(Scenario::Ideal, WinocConfig::Config4));
        let p = model.price(&result.net, result.cycles);

        let net = &result.net;
        let max_radix = (0..net.num_routers() as u32).map(|r| net.router(r).radix()).max().unwrap();
        let wireless_buses =
            net.buses().iter().filter(|b| matches!(b.class, LinkClass::Wireless { .. })).count();
        let discards: u64 = net.buses().iter().map(|b| b.discards).sum();

        println!("OWN-{scale} @ {rate} flits/core/cycle:");
        println!("  routers              : {}", net.num_routers());
        println!("  max radix            : {max_radix} (paper: 20 at 256, 22 at 1024)");
        println!(
            "  wireless media       : {} point-to-point + {} multicast buses",
            net.channels().iter().filter(|c| matches!(c.class, LinkClass::Wireless { .. })).count(),
            wireless_buses
        );
        println!("  multicast discards   : {discards} flit-receptions");
        println!("  avg latency          : {:.1} cycles (≤3 hops by design)", result.avg_latency);
        println!("  throughput           : {:.4} flits/core/cycle", result.throughput);
        println!(
            "  total power          : {:.3} W ({:.2} nJ/packet)",
            p.total_w(),
            p.nj_per_packet()
        );
        println!();
    }
}
