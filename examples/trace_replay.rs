//! Trace-driven evaluation: replay application-like traffic on OWN-256.
//!
//! The paper evaluates on synthetic traffic and names real workloads as
//! future work (§V); this example shows the trace infrastructure that
//! closes that gap: a phased trace (alternating neighbor/transpose program
//! phases, an FFT-like structure) and a bursty Markov-modulated trace are
//! generated, saved to the standard text format, re-loaded, and replayed.
//!
//! ```text
//! cargo run --release --example trace_replay [-- <trace-file>]
//! ```
//!
//! Passing a file path replays that trace instead (format: one
//! `cycle src dst len` record per line, `#` comments).

use own_noc::core::RouterConfig;
use own_noc::topology::{Own, Topology};
use own_noc::traffic::{Trace, TraceInjector, TrafficPattern};

fn replay(name: &str, trace: Trace) {
    let packets = trace.len();
    let flits = trace.flits();
    let horizon = trace.horizon();
    let mut net = Own::new_256().build(RouterConfig::default());
    net.stats.measure_from = 0;
    let mut inj = TraceInjector::new(trace);
    let drained = inj.replay(&mut net, 1_000_000);
    println!("{name}:");
    println!("  events           : {packets} packets / {flits} flits over {horizon} cycles");
    println!("  drained          : {drained}");
    println!("  delivered        : {} packets", net.stats.packets_delivered);
    println!("  avg latency      : {:.1} cycles", net.stats.latency.mean());
    println!("  p99 latency      : {} cycles", net.stats.latency.quantile(0.99));
    println!("  total cycles     : {}", net.now);
    println!();
}

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let text = std::fs::read_to_string(&path).expect("cannot read trace file");
        let trace = Trace::parse(&text).expect("malformed trace");
        replay(&path, trace);
        return;
    }

    // Phased trace: neighbor exchange / transpose alternation, as in
    // stencil + FFT program structure.
    let phased = Trace::phased(
        256,
        &[
            (TrafficPattern::Neighbor, 0.05),
            (TrafficPattern::Transpose, 0.03),
            (TrafficPattern::Neighbor, 0.05),
            (TrafficPattern::BitComplement, 0.02),
        ],
        2_000,
        4,
        2026,
    );
    // Round-trip through the text format to demonstrate persistence.
    let text = phased.to_text();
    let reloaded = Trace::parse(&text).expect("round trip");
    assert_eq!(reloaded, phased);
    replay("phased (neighbor/transpose/neighbor/bit-complement)", reloaded);

    let bursty = Trace::bursty(256, 8_000, 0.004, 0.25, 2, TrafficPattern::Uniform, 7);
    replay("bursty (Markov on/off, ~3% mean load)", bursty);
}
